"""Burst-buffer tier model: finite fast storage between ranks and the PFS.

A :class:`BurstBuffer` is one staging device — an SSD/NVRAM module attached
either to a writer's compute node or to its pset's I/O node — modelled with
the same :class:`~repro.sim.Pipe` primitives as the rest of the machine:

- **ingest** moves a staged checkpoint package onto the device at device
  bandwidth (ION-attached buffers additionally cross the pset's collective
  network link, and both stages pipeline like every other composite
  transport in the simulator);
- **capacity** is finite: :meth:`reserve` admits a package only when it
  fits, queueing writers FIFO otherwise.  This is the staging analogue of
  the paper's lambda — compute ranks only ever block when the buffer is
  full and the background drain cannot free space fast enough;
- **drain and restore reads** share the same device pipe as ingest, so a
  busy drain slows staging exactly as a real shared device would.

Capacity accounting is by *bytes reserved*, not bytes resident: a package
occupies its reservation from admission until the drain (or an eviction)
calls :meth:`free`.

Device ``read``/``write`` model *time* only; the staged payload itself is
a :class:`~repro.buffers.ByteRope` held by the resident
:class:`~repro.staging.drain.StagedPackage`, sharing the worker packages'
segments — staging a checkpoint copies no host bytes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..sim import Engine, Event, Pipe, TimeSeries

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from .drain import StagedPackage

__all__ = ["StagingConfig", "BurstBuffer", "StagingError"]


class StagingError(RuntimeError):
    """Raised on invalid staging usage or a failed/lost staging tier.

    Mirrors :class:`~repro.storage.FSError`'s context: the failing
    operation, path, simulated timestamp, and whether a retry could
    plausibly succeed (``transient``).
    """

    def __init__(self, message: str, *, op: Optional[str] = None,
                 path: Optional[str] = None, time: Optional[float] = None,
                 transient: bool = False) -> None:
        super().__init__(message)
        self.op = op
        self.path = path
        self.time = time
        self.transient = transient


@dataclass(frozen=True)
class StagingConfig:
    """Tunables of the staging tier (one config per job).

    Parameters
    ----------
    placement:
        ``"ion"`` — one buffer per pset, shared by that pset's writers and
        reached over the collective network (DataWarp-style); ``"node"`` —
        a private buffer on each writer's compute node (local NVMe).
    capacity_bytes:
        Usable capacity of one buffer device.
    device_bandwidth:
        Sequential device bandwidth (shared by ingest, drain, and restore
        reads).
    drain_bandwidth:
        Target background trickle rate toward the PFS.  ``None`` drains as
        fast as the PFS accepts.  The cap is lifted whenever occupancy is
        above ``high_watermark`` (emergency drain).
    drain_chunk:
        Bytes per PFS write burst issued by the drain process.
    high_watermark:
        Occupancy fraction above which the drain ignores ``drain_bandwidth``
        and goes flat out.  ``None`` makes the trickle cap *hard* (no
        emergency override) — useful when sweeping ``drain_bandwidth`` as
        an experimental knob.
    replicate:
        Copy every staged package to a partner failure domain's buffer
        (enables restart with zero PFS reads).  Size ``capacity_bytes``
        for residents *plus* replicas (roughly twice a step's volume): a
        replica reservation can only be freed by drains of earlier
        packages, never by the step currently being staged.
    replica_shift:
        Distance (in writer groups) to the replication partner.
    """

    placement: str = "ion"
    capacity_bytes: int = 4 * 1024**3
    device_bandwidth: float = 1.5e9
    drain_bandwidth: Optional[float] = None
    drain_chunk: int = 16 * 1024 * 1024
    high_watermark: Optional[float] = 0.75
    replicate: bool = False
    replica_shift: int = 1

    def __post_init__(self) -> None:
        if self.placement not in ("ion", "node"):
            raise ValueError(f"placement must be 'ion' or 'node', got {self.placement!r}")
        if self.capacity_bytes < 1:
            raise ValueError("capacity_bytes must be >= 1")
        if self.device_bandwidth <= 0:
            raise ValueError("device_bandwidth must be positive")
        if self.drain_bandwidth is not None and self.drain_bandwidth <= 0:
            raise ValueError("drain_bandwidth must be positive or None")
        if self.drain_chunk < 1:
            raise ValueError("drain_chunk must be >= 1")
        if self.high_watermark is not None and not 0.0 < self.high_watermark <= 1.0:
            raise ValueError("high_watermark must be in (0, 1] or None")
        if self.replica_shift < 1:
            raise ValueError("replica_shift must be >= 1")


class BurstBuffer:
    """One staging device with finite capacity and a shared data pipe.

    ``link`` is the optional network stage in front of the device (the
    pset's collective link for ION-attached placement); node-local buffers
    have none.
    """

    def __init__(self, engine: Engine, name: str, capacity_bytes: int,
                 device_bandwidth: float, link: Optional[Pipe] = None) -> None:
        if capacity_bytes < 1:
            raise ValueError("capacity_bytes must be >= 1")
        self.engine = engine
        self.name = name
        self.capacity = int(capacity_bytes)
        self.device = Pipe(engine, device_bandwidth)
        self.link = link
        self.used = 0
        self.peak_used = 0
        self._waiters: deque[tuple[int, Event]] = deque()
        #: Resident staged packages keyed by ``(step, group)``.
        self.resident: dict[tuple[int, int], "StagedPackage"] = {}
        #: Partner replicas held on behalf of other groups, keyed by group.
        self.replicas: dict[int, "StagedPackage"] = {}
        self.occupancy = TimeSeries(f"{name}.occupancy")
        self.stall_seconds = 0.0
        self.stalls = 0
        #: Set by fault injection: the device failed and lost its contents.
        self.lost = False

    # -- capacity ----------------------------------------------------------
    @property
    def free_bytes(self) -> int:
        """Capacity not currently reserved."""
        return self.capacity - self.used

    @property
    def fill_fraction(self) -> float:
        """Reserved fraction of capacity."""
        return self.used / self.capacity

    def _admit(self, nbytes: int) -> None:
        self.used += nbytes
        if self.used > self.peak_used:
            self.peak_used = self.used
        self.occupancy.record(self.engine.now, self.used)

    def reserve(self, nbytes: int):
        """Generator: block (FIFO) until ``nbytes`` of capacity is reserved.

        This is the staging subsystem's single backpressure point: a writer
        parked here cannot acknowledge its workers, which is what finally
        stalls computation when the drain falls behind.
        """
        nbytes = int(nbytes)
        if self.lost:
            raise StagingError(f"buffer {self.name} lost", op="reserve",
                               path=self.name, time=self.engine.now)
        if nbytes < 0:
            raise StagingError(f"negative reservation: {nbytes}")
        if nbytes > self.capacity:
            raise StagingError(
                f"package of {nbytes} B exceeds buffer capacity "
                f"{self.capacity} B ({self.name})"
            )
        if not self._waiters and self.used + nbytes <= self.capacity:
            self._admit(nbytes)
            return
        ev = Event(self.engine)
        self._waiters.append((nbytes, ev))
        self.stalls += 1
        t0 = self.engine.now
        yield ev
        self.stall_seconds += self.engine.now - t0

    def free(self, nbytes: int) -> None:
        """Return ``nbytes`` of capacity, admitting queued writers in order."""
        nbytes = int(nbytes)
        if nbytes < 0 or nbytes > self.used:
            raise StagingError(
                f"bad free of {nbytes} B with {self.used} B reserved ({self.name})"
            )
        self.used -= nbytes
        self.occupancy.record(self.engine.now, self.used)
        while self._waiters and self.used + self._waiters[0][0] <= self.capacity:
            want, ev = self._waiters.popleft()
            self._admit(want)
            ev.succeed()

    @property
    def queue_length(self) -> int:
        """Writers currently parked in :meth:`reserve`."""
        return len(self._waiters)

    # -- data movement -----------------------------------------------------
    def _move(self, nbytes: int, via_link: bool) -> Event:
        t_dev = self.device.reserve(nbytes)
        if via_link and self.link is not None:
            t_link = self.link.reserve(nbytes)
            if t_link > t_dev:
                t_dev = t_link
        return self.engine.timeout(t_dev - self.engine.now)

    def write(self, nbytes: int) -> Event:
        """Event: ``nbytes`` ingested onto the device (link + device pipes)."""
        if self.lost:
            raise StagingError(f"buffer {self.name} lost", op="write",
                               path=self.name, time=self.engine.now)
        if nbytes < 0:
            raise StagingError(f"negative write size: {nbytes}")
        return self._move(nbytes, via_link=True)

    def read(self, nbytes: int, via_link: bool = True) -> Event:
        """Event: ``nbytes`` read back off the device.

        Restore reads cross the link back to a compute node
        (``via_link=True``); the background drain runs *at* the device's
        host and reads locally (``via_link=False``) — its traffic to the
        PFS is charged by the file-system client instead.
        """
        if self.lost:
            raise StagingError(f"buffer {self.name} lost", op="read",
                               path=self.name, time=self.engine.now)
        if nbytes < 0:
            raise StagingError(f"negative read size: {nbytes}")
        return self._move(nbytes, via_link=via_link)

    def mark_lost(self) -> int:
        """Fail the device, losing all contents; returns packages lost.

        Every resident package and replica is marked corrupt (so a restore
        path that still holds a reference detects the loss), residency is
        cleared, and writers parked in :meth:`reserve` get a
        :class:`StagingError` thrown into them so nothing hangs on a dead
        device.
        """
        self.lost = True
        n = len(self.resident) + len(self.replicas)
        for pkg in self.resident.values():
            pkg.corrupt = True
        for pkg in self.replicas.values():
            pkg.corrupt = True
        self.resident.clear()
        self.replicas.clear()
        while self._waiters:
            _, ev = self._waiters.popleft()
            ev.fail(StagingError(f"buffer {self.name} lost", op="reserve",
                                 path=self.name, time=self.engine.now))
        return n

    # -- residency ---------------------------------------------------------
    def stage(self, pkg: "StagedPackage") -> None:
        """Register a package as resident (restorable from this buffer)."""
        self.resident[(pkg.step, pkg.group)] = pkg

    def unstage(self, pkg: "StagedPackage") -> None:
        """Drop residency after the drain committed the package to the PFS."""
        self.resident.pop((pkg.step, pkg.group), None)

    def stats(self) -> dict:
        """Occupancy and stall counters (diagnostics / benches)."""
        return {
            "name": self.name,
            "capacity": self.capacity,
            "used": self.used,
            "peak_used": self.peak_used,
            "resident": len(self.resident),
            "replicas": len(self.replicas),
            "stalls": self.stalls,
            "stall_seconds": self.stall_seconds,
            "bytes_moved": self.device.bytes_moved,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<BurstBuffer {self.name} {self.used}/{self.capacity}B "
            f"q={len(self._waiters)}>"
        )
