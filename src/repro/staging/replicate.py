"""Partner replication: mirror staged checkpoints across failure domains.

After a writer stages its group's package into its own burst buffer, it may
additionally push a copy to the buffer of a *partner* writer group (group
``(g + shift) mod ng``, a different failure domain for any reasonable rank
layout).  The copy travels over the regular torus fabric and is ingested at
the partner device's bandwidth, so replication has a real, modelled cost.

The payoff is on restart: if the local buffer was lost with its failure
domain, the partner's replica serves the entire restore — the group's data
comes back over the network with **zero PFS reads** (the property
``bench_ext_staging.py`` asserts).

Each partner buffer holds at most one replica per source group (the most
recent checkpoint); replacing a replica frees the old reservation before
taking the new one, so steady-state replica footprint is one package per
group.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..network import Fabric
from ..sim import Engine
from .buffer import BurstBuffer, StagingError
from .drain import StagedPackage

__all__ = ["PartnerReplicator"]


class PartnerReplicator:
    """Copies staged packages to a neighbor failure domain's buffer.

    Parameters
    ----------
    engine:
        The job's simulation engine.
    fabric:
        The partition's torus fabric (the copy is real network traffic).
    buffer_for:
        ``rank -> BurstBuffer`` accessor (the staging service's own).
    shift:
        Partner distance in writer groups; partner of group ``g`` out of
        ``ng`` is ``(g + shift) mod ng``.
    """

    def __init__(self, engine: Engine, fabric: Fabric,
                 buffer_for: Callable[[int], BurstBuffer],
                 shift: int = 1) -> None:
        if shift < 1:
            raise ValueError("shift must be >= 1")
        self.engine = engine
        self.fabric = fabric
        self.buffer_for = buffer_for
        self.shift = shift
        self.replicas_made = 0
        self.bytes_replicated = 0
        self.bytes_deduped = 0

    def partner_group(self, group: int, n_groups: int) -> int:
        """The failure-domain partner of ``group``."""
        if n_groups < 2:
            raise StagingError(
                f"partner replication needs >= 2 writer groups, have {n_groups}"
            )
        return (group + self.shift) % n_groups

    def replicate(self, pkg: StagedPackage, src_rank: int, partner_rank: int):
        """Generator: copy ``pkg`` into the partner writer's buffer.

        Blocks until the copy is resident (network transfer + partner
        device ingest + any capacity wait).  A previous replica of the
        same source group is evicted first, so the reservation cannot
        deadlock against a buffer full of stale replicas.
        """
        partner = self.buffer_for(partner_rank)
        old = partner.replicas.pop(pkg.group, None)
        if old is not None:
            partner.free(old.nbytes)
        yield from partner.reserve(pkg.nbytes)
        # Incremental packages dedup against the replica they replace: only
        # the fresh chunks (plus header and manifest) cross the fabric, the
        # partner reconstructing the rest from the evicted previous
        # generation.  Without a previous replica the full image ships.
        wire = pkg.nbytes
        if pkg.wire_nbytes is not None and old is not None:
            wire = min(int(pkg.wire_nbytes), pkg.nbytes)
            self.bytes_deduped += pkg.nbytes - wire
        yield self.fabric.transfer(src_rank, partner_rank, wire)
        yield partner.write(wire)
        # The replica *shares* the source package's image rope — the copy
        # is simulated (network + device time above); no host bytes move,
        # and the replica's CRC is recomputed over the shared segments.
        replica = StagedPackage(self.engine, pkg.step, pkg.group, pkg.path,
                                pkg.nbytes, layout=pkg.layout, image=pkg.image)
        partner.replicas[pkg.group] = replica
        self.replicas_made += 1
        self.bytes_replicated += wire

    def find_replica(self, partner_rank: int, group: int,
                     step: int) -> Optional[StagedPackage]:
        """The partner-held replica of ``group``'s checkpoint at ``step``."""
        replica = self.buffer_for(partner_rank).replicas.get(group)
        if replica is not None and replica.step == step:
            return replica
        return None

    def stats(self) -> dict:
        """Replication counters (diagnostics / benches)."""
        return {
            "replicas_made": self.replicas_made,
            "bytes_replicated": self.bytes_replicated,
            "bytes_deduped": self.bytes_deduped,
        }
