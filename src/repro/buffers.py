"""Zero-copy scatter-gather buffers: the payload data plane.

The checkpoint pipelines in this repo are data-movement pipelines (worker
package -> writer aggregation -> two-phase exchange -> GPFS extents), and
at payload scale the dominant *host* cost used to be Python re-copying the
same bytes at every hop: ``CheckpointData.concatenated_payload`` joined the
fields, the rbIO writer reassembled a field-major ``bytearray``, the MPI-IO
aggregator overlaid another one, every burst sliced a fresh ``bytes``, and
``FileObject.read_extents`` materialized whole files on read.  Following
the segment-list idiom of collective-I/O implementations (describe data as
offset/length views, never flatten mid-pipeline), this module provides an
immutable rope of ``memoryview`` segments so a checkpoint's bytes are
copied exactly once — at the final file-system commit boundary.

:class:`ByteRope` (alias :data:`SegmentList`) supports ``slice`` /
``concat`` / ``split_at`` without touching payload bytes, computes CRC32
iteratively over its segments, compares content against any bytes-like
without materializing, and converts to flat ``bytes`` lazily (memoized) via
:meth:`ByteRope.to_bytes`.

Accounting
----------
Every materializing operation records into the module-level :data:`stats`
(``bytes_copied`` / ``buffer_allocs``), surfaced through
``Engine.counters()`` and ``DarshanProfiler.summary()`` so the zero-copy
win is measurable (``benchmarks/bench_dataplane.py``).

:func:`set_copy_mode` switches the module between ``"zerocopy"`` (default)
and ``"eager"``.  Eager mode materializes at every hop — reproducing the
pre-rope copy-per-hop behavior byte for byte — which is what the data-plane
benchmark and the rope-vs-bytes property tests compare against.  Both modes
produce bit-identical committed file images; only host copies differ.
"""

from __future__ import annotations

import zlib
from bisect import bisect_right
from typing import Iterator, Optional, Union

__all__ = [
    "ByteRope",
    "SegmentList",
    "BufferStats",
    "stats",
    "concat",
    "zeros",
    "overlay",
    "as_bytes",
    "crc32_of",
    "set_copy_mode",
    "copy_mode",
]

BytesLike = Union[bytes, bytearray, memoryview, "ByteRope"]


class BufferStats:
    """Process-wide data-plane copy counters.

    ``bytes_copied`` counts payload bytes physically moved between host
    buffers; ``buffer_allocs`` counts the fresh buffers those moves filled.
    Zero-copy operations (slice, concat, split, CRC, equality) never touch
    either counter.
    """

    __slots__ = ("bytes_copied", "buffer_allocs")

    def __init__(self) -> None:
        self.bytes_copied = 0
        self.buffer_allocs = 0

    def reset(self) -> None:
        """Zero both counters (benchmark / test isolation)."""
        self.bytes_copied = 0
        self.buffer_allocs = 0

    def count_copy(self, nbytes: int, allocs: int = 1) -> None:
        """Record one materialization of ``nbytes`` into ``allocs`` buffers."""
        self.bytes_copied += nbytes
        self.buffer_allocs += allocs

    def snapshot(self) -> dict:
        """Counter values as a plain dict (for records and summaries)."""
        return {"bytes_copied": self.bytes_copied,
                "buffer_allocs": self.buffer_allocs}


#: The module-wide counter instance every rope operation reports to.
stats = BufferStats()

_MODES = ("zerocopy", "eager")
_mode = "zerocopy"


def set_copy_mode(mode: str) -> str:
    """Select the data-plane copy discipline; returns the previous mode.

    ``"zerocopy"`` (default) moves segment references between hops and
    copies only at the FS-commit boundary.  ``"eager"`` materializes every
    slice/concat/zeros into fresh ``bytes`` — the pre-rope behavior — so
    benchmarks can measure the reduction against a faithful baseline.
    """
    global _mode
    if mode not in _MODES:
        raise ValueError(f"unknown copy mode {mode!r}; expected one of {_MODES}")
    prev = _mode
    _mode = mode
    return prev


def copy_mode() -> str:
    """The active copy discipline (``"zerocopy"`` or ``"eager"``)."""
    return _mode


#: Shared zero page backing `zeros()` ropes (sparse reads, file headers).
_ZERO_PAGE_SIZE = 1 << 20
_ZERO_VIEW = memoryview(bytes(_ZERO_PAGE_SIZE))


class ByteRope:
    """An immutable scatter-gather byte sequence.

    A rope is an ordered tuple of ``memoryview`` segments over caller-owned
    buffers.  All structural operations (:meth:`slice`, :meth:`concat`,
    :meth:`split_at`) manipulate segment references only; payload bytes
    move exactly once, when :meth:`to_bytes` is finally called at a commit
    boundary (and the flat result is memoized).

    Ropes quack enough like ``bytes`` for the simulator's data plane:
    ``len``, truthiness, ``rope[int]`` -> int, ``rope[a:b]`` -> rope,
    ``rope + other`` -> rope, content equality against any bytes-like, and
    ``bytes(rope)``.  They do *not* expose the buffer protocol — consumers
    that need real contiguous memory (``np.frombuffer``, vtk encoding)
    must cross through :func:`as_bytes`, which is the point: those are the
    copy boundaries, and they are counted.
    """

    __slots__ = ("_segments", "_starts", "_length", "_flat")

    def __init__(self) -> None:
        raise TypeError("use ByteRope.wrap(), concat(), or zeros()")

    @classmethod
    def _new(cls, segments: tuple, starts: list, length: int,
             flat: Optional[bytes]) -> "ByteRope":
        rope = object.__new__(cls)
        rope._segments = segments
        rope._starts = starts
        rope._length = length
        rope._flat = flat
        return rope

    @classmethod
    def _flat_rope(cls, data: bytes) -> "ByteRope":
        """A single-segment rope over freshly materialized ``bytes``."""
        if not data:
            return EMPTY
        return cls._new((memoryview(data),), [0], len(data), data)

    # -- construction ------------------------------------------------------
    @classmethod
    def wrap(cls, data: BytesLike) -> "ByteRope":
        """View ``data`` as a rope without copying.

        ``bytes`` input keeps a reference so a later :meth:`to_bytes` is
        free; ``bytearray``/``memoryview`` input is viewed in place (the
        caller must not mutate it afterwards — simulator payloads never
        are).
        """
        if isinstance(data, ByteRope):
            return data
        if isinstance(data, bytes):
            if not data:
                return EMPTY
            return cls._new((memoryview(data),), [0], len(data), data)
        if isinstance(data, (bytearray, memoryview)):
            mv = memoryview(data)
            if mv.ndim != 1 or mv.format != "B":
                mv = mv.cast("B")
            if not len(mv):
                return EMPTY
            return cls._new((mv,), [0], len(mv), None)
        raise TypeError(f"cannot wrap {type(data).__name__} as a ByteRope")

    @classmethod
    def concat(cls, parts) -> "ByteRope":
        """Join bytes-likes/ropes in order; zero-copy segment merge."""
        ropes = [p if isinstance(p, ByteRope) else cls.wrap(p) for p in parts]
        ropes = [r for r in ropes if r._length]
        if not ropes:
            return EMPTY
        if len(ropes) == 1:
            return ropes[0]
        if _mode == "eager":
            data = b"".join(s for r in ropes for s in r._segments)
            stats.count_copy(len(data))
            return cls._flat_rope(data)
        segments = []
        starts = []
        pos = 0
        for r in ropes:
            for seg in r._segments:
                segments.append(seg)
                starts.append(pos)
                pos += len(seg)
        return cls._new(tuple(segments), starts, pos, None)

    # -- structural ops (no byte movement) ---------------------------------
    def slice(self, start: int, stop: Optional[int] = None) -> "ByteRope":
        """The sub-rope ``[start, stop)``; segment views only."""
        length = self._length
        if stop is None:
            stop = length
        start = max(0, min(int(start), length))
        stop = max(start, min(int(stop), length))
        if start == 0 and stop == length:
            return self
        n = stop - start
        if n == 0:
            return EMPTY
        if _mode == "eager":
            data = b"".join(self._iter_range(start, stop))
            stats.count_copy(n)
            return ByteRope._flat_rope(data)
        segments = tuple(self._iter_range(start, stop))
        starts = []
        pos = 0
        for seg in segments:
            starts.append(pos)
            pos += len(seg)
        return ByteRope._new(segments, starts, n, None)

    def split_at(self, offset: int) -> tuple["ByteRope", "ByteRope"]:
        """``(rope[:offset], rope[offset:])`` without copying."""
        return self.slice(0, offset), self.slice(offset, self._length)

    def _iter_range(self, start: int, stop: int) -> Iterator[memoryview]:
        """Segment views covering ``[start, stop)`` (callers clamp bounds)."""
        starts = self._starts
        i = bisect_right(starts, start) - 1
        for k in range(i, len(starts)):
            seg = self._segments[k]
            s0 = starts[k]
            if s0 >= stop:
                break
            lo = max(0, start - s0)
            hi = min(len(seg), stop - s0)
            yield seg if lo == 0 and hi == len(seg) else seg[lo:hi]

    def iter_segments(self) -> Iterator[memoryview]:
        """The underlying segment views, in order."""
        return iter(self._segments)

    @property
    def n_segments(self) -> int:
        """Number of underlying segments (scatter-gather degree)."""
        return len(self._segments)

    # -- content ops -------------------------------------------------------
    def crc32(self, value: int = 0) -> int:
        """CRC32 of the content, computed incrementally over segments."""
        for seg in self._segments:
            value = zlib.crc32(seg, value)
        return value & 0xFFFFFFFF

    def to_bytes(self) -> bytes:
        """Flat ``bytes`` of the content — THE copy boundary (memoized).

        A rope wrapped directly over a ``bytes`` object returns it without
        copying; anything else joins its segments exactly once and caches
        the result.
        """
        flat = self._flat
        if flat is None:
            flat = b"".join(self._segments)
            stats.count_copy(len(flat))
            self._flat = flat
        return flat

    tobytes = to_bytes  # memoryview-style spelling

    # -- dunder plumbing ---------------------------------------------------
    def __len__(self) -> int:
        return self._length

    def __bool__(self) -> bool:
        return self._length > 0

    def __bytes__(self) -> bytes:
        return self.to_bytes()

    def __getitem__(self, key):
        if isinstance(key, slice):
            start, stop, step = key.indices(self._length)
            if step != 1:
                raise ValueError("ByteRope slices must be contiguous (step 1)")
            return self.slice(start, stop)
        idx = int(key)
        if idx < 0:
            idx += self._length
        if not 0 <= idx < self._length:
            raise IndexError("ByteRope index out of range")
        i = bisect_right(self._starts, idx) - 1
        return self._segments[i][idx - self._starts[i]]

    def __add__(self, other):
        if isinstance(other, (bytes, bytearray, memoryview, ByteRope)):
            return ByteRope.concat((self, other))
        return NotImplemented

    def __radd__(self, other):
        if isinstance(other, (bytes, bytearray, memoryview)):
            return ByteRope.concat((other, self))
        return NotImplemented

    def __eq__(self, other):
        if other is self:
            return True
        if isinstance(other, ByteRope):
            if other._length != self._length:
                return False
            if (self._flat is not None and other._flat is not None):
                return self._flat == other._flat
            return self._content_eq(other._segments)
        if isinstance(other, (bytes, bytearray, memoryview)):
            if len(other) != self._length:
                return False
            mv = memoryview(other)
            if mv.ndim != 1 or mv.format != "B":
                mv = mv.cast("B")
            pos = 0
            for seg in self._segments:
                n = len(seg)
                if seg != mv[pos : pos + n]:
                    return False
                pos += n
            return True
        return NotImplemented

    __hash__ = None  # mutable-adjacent semantics: content eq, no hashing

    def _content_eq(self, other_segments: tuple) -> bool:
        """Segment-aligned content comparison (equal lengths assumed)."""
        a_iter = iter(self._segments)
        b_iter = iter(other_segments)
        a = next(a_iter, None)
        b = next(b_iter, None)
        a_pos = b_pos = 0
        while a is not None and b is not None:
            n = min(len(a) - a_pos, len(b) - b_pos)
            if a[a_pos : a_pos + n] != b[b_pos : b_pos + n]:
                return False
            a_pos += n
            b_pos += n
            if a_pos == len(a):
                a = next(a_iter, None)
                a_pos = 0
            if b is not None and b_pos == len(b):
                b = next(b_iter, None)
                b_pos = 0
        return a is None and b is None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<ByteRope {self._length} B in {len(self._segments)} "
                f"segment{'s' if len(self._segments) != 1 else ''}"
                f"{' (flat)' if self._flat is not None else ''}>")


#: ISSUE/API alias: a rope *is* the segment list.
SegmentList = ByteRope

#: The canonical empty rope (shared; every empty result is this object).
EMPTY = ByteRope._new((), [], 0, b"")
ByteRope.EMPTY = EMPTY


def concat(parts) -> ByteRope:
    """Module-level spelling of :meth:`ByteRope.concat`."""
    return ByteRope.concat(parts)


def zeros(n: int) -> ByteRope:
    """A rope of ``n`` zero bytes backed by one shared page (no allocation).

    Sparse-file reads and master headers are all zeros; in zero-copy mode
    they reference the module's zero page, in eager mode they allocate (and
    count) real buffers like the pre-rope code did.
    """
    if n <= 0:
        return EMPTY
    if _mode == "eager":
        stats.count_copy(n)
        return ByteRope._flat_rope(bytes(n))
    full, rem = divmod(n, _ZERO_PAGE_SIZE)
    segments = [_ZERO_VIEW] * full
    if rem:
        segments.append(_ZERO_VIEW[:rem])
    starts = [i * _ZERO_PAGE_SIZE for i in range(len(segments))]
    return ByteRope._new(tuple(segments), starts, n, None)


def overlay(pieces, lo: int, hi: int) -> ByteRope:
    """Compose ``(offset, data)`` pieces over ``[lo, hi)``, later wins.

    Gaps come back as zeros (sparse-file semantics).  Pieces are applied in
    iteration order, so a later piece shadows an earlier one wherever they
    overlap — exactly the write-order semantics of extent lists and of the
    aggregator's domain reassembly.  The result references the pieces'
    segments; nothing is copied.
    """
    span = hi - lo
    if span <= 0:
        return EMPTY
    clipped = []  # (start, end, rope, piece_offset), application order
    for off, data in pieces:
        rope = data if isinstance(data, ByteRope) else ByteRope.wrap(data)
        s = max(lo, off)
        e = min(hi, off + rope._length)
        if s < e:
            clipped.append((s, e, rope, off))
    if not clipped:
        return zeros(span)
    first_s, first_e, first_rope, first_off = clipped[0]
    if len(clipped) == 1 and first_s == lo and first_e == hi:
        return first_rope.slice(lo - first_off, hi - first_off)
    bounds = {lo, hi}
    for s, e, _rope, _off in clipped:
        bounds.add(s)
        bounds.add(e)
    edges = sorted(bounds)
    parts = []
    for a, b in zip(edges, edges[1:]):
        chosen = None
        for s, e, rope, off in reversed(clipped):
            if s <= a and b <= e:
                chosen = rope.slice(a - off, b - off)
                break
        parts.append(chosen if chosen is not None else zeros(b - a))
    return ByteRope.concat(parts)


def as_bytes(data) -> Optional[bytes]:
    """Flat ``bytes`` of any bytes-like — the explicit copy boundary.

    ``bytes`` passes through untouched, ropes materialize via
    :meth:`ByteRope.to_bytes` (memoized, counted), other buffer types copy
    (counted).  ``None`` passes through for size-only payloads.
    """
    if data is None or isinstance(data, bytes):
        return data
    if isinstance(data, ByteRope):
        return data.to_bytes()
    if isinstance(data, (bytearray, memoryview)):
        out = bytes(data)
        stats.count_copy(len(out))
        return out
    raise TypeError(f"cannot materialize {type(data).__name__} as bytes")


def crc32_of(data, value: int = 0) -> int:
    """CRC32 of any bytes-like, segment-iterative for ropes (no copy)."""
    if isinstance(data, ByteRope):
        return data.crc32(value)
    return zlib.crc32(data, value) & 0xFFFFFFFF
