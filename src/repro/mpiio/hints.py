"""MPI-IO hints (the tunables the paper adjusts on Blue Gene).

The Blue Gene MPI-IO library exposes collective-buffering controls through
hints; the two that matter for the paper are the aggregator ratio
(``bgp_nodes_pset``: how many ranks share one I/O aggregator — default one
aggregator per 32 MPI processes in virtual-node mode) and file-domain
alignment to file-system block boundaries (which avoids lock conflicts on
GPFS).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["Hints"]


@dataclass(frozen=True)
class Hints:
    """Collective-buffering hints for one MPI-IO file.

    Parameters
    ----------
    ranks_per_aggregator:
        One I/O aggregator is designated per this many ranks of the file's
        communicator (ROMIO's ``bgp_nodes_pset`` behaviour; BG/P VN-mode
        default is 32).
    align_file_domains:
        Round file-domain boundaries up to file-system block multiples,
        the BG/P ROMIO alignment optimization (Liao & Choudhary, SC'08).
        Turning this off is the alignment ablation.
    cb_buffer_size:
        Collective buffer size per aggregator.  Domains larger than this
        are committed in multiple bursts.
    """

    ranks_per_aggregator: int = 32
    align_file_domains: bool = True
    cb_buffer_size: int = 16 * 1024 * 1024

    def __post_init__(self) -> None:
        if self.ranks_per_aggregator < 1:
            raise ValueError("ranks_per_aggregator must be >= 1")
        if self.cb_buffer_size < 1:
            raise ValueError("cb_buffer_size must be >= 1")

    def n_aggregators(self, comm_size: int) -> int:
        """Number of aggregators designated for a communicator."""
        return max(1, comm_size // self.ranks_per_aggregator)

    def with_(self, **changes) -> "Hints":
        """Copy with fields replaced."""
        return replace(self, **changes)
