"""MPI-IO hints (the tunables the paper adjusts on Blue Gene).

The Blue Gene MPI-IO library exposes collective-buffering controls through
hints; the ones that matter here are the aggregator ratio
(``bgp_nodes_pset``: how many ranks share one I/O aggregator — default one
aggregator per 32 MPI processes in virtual-node mode), the explicit
aggregator count (``cb_nodes``, ROMIO's node-aware override — it wins over
the ratio when both are set), file-domain alignment to file-system block
boundaries (which avoids lock conflicts on GPFS), and the two-level
intra-node aggregation mode (``tam``, after Kang et al., arXiv:1907.12656).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping, Optional

__all__ = ["Hints", "TAM_MODES"]

#: Two-level (intra-node) aggregation modes: ``"off"`` keeps the flat
#: exchange, ``"auto"`` engages TAM whenever nodes host multiple ranks,
#: ``"require"`` raises if TAM cannot engage (no co-resident ranks).
TAM_MODES = ("off", "auto", "require")

#: Hint keys :meth:`Hints.from_info` understands (ROMIO info-string style).
_INFO_KEYS = ("cb_nodes", "cb_buffer_size", "bgp_nodes_pset", "tam",
              "align_file_domains")

_BOOL_WORDS = {"true": True, "enable": True, "1": True, "yes": True,
               "false": False, "disable": False, "0": False, "no": False}


@dataclass(frozen=True)
class Hints:
    """Collective-buffering hints for one MPI-IO file.

    Parameters
    ----------
    ranks_per_aggregator:
        One I/O aggregator is designated per this many ranks of the file's
        communicator (ROMIO's ``bgp_nodes_pset`` behaviour; BG/P VN-mode
        default is 32).
    align_file_domains:
        Round file-domain boundaries up to file-system block multiples,
        the BG/P ROMIO alignment optimization (Liao & Choudhary, SC'08).
        Turning this off is the alignment ablation.
    cb_buffer_size:
        Collective buffer size per aggregator.  Domains larger than this
        are committed in multiple bursts.
    cb_nodes:
        Explicit aggregator count (ROMIO's node-aware hint).  When set it
        takes precedence over ``ranks_per_aggregator``; the count is
        clamped to the communicator size (and, under TAM, to the number of
        participating nodes).
    tam:
        Two-level intra-node aggregation mode (one of :data:`TAM_MODES`).
        Under TAM ranks first coalesce extents through their node's leader
        over shared memory, and only node leaders join the inter-node
        two-phase exchange.
    """

    ranks_per_aggregator: int = 32
    align_file_domains: bool = True
    cb_buffer_size: int = 16 * 1024 * 1024
    cb_nodes: Optional[int] = None
    tam: str = "off"

    def __post_init__(self) -> None:
        if self.ranks_per_aggregator < 1:
            raise ValueError("ranks_per_aggregator must be >= 1")
        if self.cb_buffer_size < 1:
            raise ValueError("cb_buffer_size must be >= 1")
        if self.cb_nodes is not None and self.cb_nodes < 1:
            raise ValueError("cb_nodes must be >= 1 (or None)")
        if self.tam not in TAM_MODES:
            raise ValueError(
                f"tam must be one of {TAM_MODES}, got {self.tam!r}")

    def n_aggregators(self, comm_size: int) -> int:
        """Number of aggregators designated for a communicator.

        An explicit ``cb_nodes`` wins over the ``ranks_per_aggregator``
        ratio, clamped to the communicator size.
        """
        if self.cb_nodes is not None:
            return max(1, min(self.cb_nodes, comm_size))
        return max(1, comm_size // self.ranks_per_aggregator)

    def with_(self, **changes) -> "Hints":
        """Copy with fields replaced."""
        return replace(self, **changes)

    @classmethod
    def from_info(cls, info: Mapping[str, object],
                  base: Optional["Hints"] = None) -> "Hints":
        """Parse a ROMIO-style info dict (string values) into hints.

        Unknown keys and invalid values raise ``ValueError`` naming the
        offending key, matching MPI_Info semantics where silent typos are
        the classic footgun.  ``base`` supplies defaults for keys the info
        dict does not mention.
        """
        base = base if base is not None else cls()
        changes: dict = {}
        for key, raw in info.items():
            if key not in _INFO_KEYS:
                raise ValueError(
                    f"unknown MPI-IO hint {key!r}; supported hints: "
                    f"{list(_INFO_KEYS)}")
            if key in ("cb_nodes", "cb_buffer_size", "bgp_nodes_pset"):
                try:
                    value = int(str(raw))
                except (TypeError, ValueError):
                    raise ValueError(
                        f"hint {key!r} needs an integer, got {raw!r}"
                    ) from None
                if value < 1:
                    raise ValueError(f"hint {key!r} must be >= 1, got {value}")
                changes[{"cb_nodes": "cb_nodes",
                         "cb_buffer_size": "cb_buffer_size",
                         "bgp_nodes_pset": "ranks_per_aggregator"}[key]] = value
            elif key == "tam":
                mode = str(raw)
                if mode not in TAM_MODES:
                    raise ValueError(
                        f"hint 'tam' must be one of {TAM_MODES}, got {raw!r}")
                changes["tam"] = mode
            else:  # align_file_domains
                word = str(raw).strip().lower()
                if word not in _BOOL_WORDS:
                    raise ValueError(
                        f"hint 'align_file_domains' needs a boolean word "
                        f"(true/false/enable/disable/1/0), got {raw!r}")
                changes["align_file_domains"] = _BOOL_WORDS[word]
        return base.with_(**changes) if changes else base
