"""Two-phase collective-buffering geometry: regions, file domains, aggregators.

ROMIO's collective write works in two phases: ranks exchange their access
regions, the file's touched range is partitioned into one contiguous *file
domain* per aggregator (aligned to file-system blocks on Blue Gene), data is
shuffled so each aggregator holds exactly its domain, and aggregators commit
to the file system.  This module implements the geometry; the data movement
lives in :class:`repro.mpiio.file.MPIFile`.

Everything here is *descriptors* — (offset, length) regions and domain
boundaries, never payload bytes.  The exchange ships region descriptors
plus zero-copy segment views (:mod:`repro.buffers`), which is exactly the
segment-list discipline that makes collective I/O fast in the first place.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

__all__ = ["RegionMap", "FileDomains", "TamExchange", "pick_aggregators",
           "pick_node_aggregators"]


class RegionMap:
    """The gathered per-rank access regions of one collective write call.

    Built exactly once per collective call (via ``allgather(map_fn=...)``)
    and shared read-only by all participants, so a 65,536-rank collective
    costs one index construction, not 65,536.
    """

    __slots__ = ("offsets", "ends", "ranks", "lo", "hi")

    def __init__(self, regions: list[tuple[int, int]]) -> None:
        offs = np.fromiter((r[0] for r in regions), dtype=np.int64, count=len(regions))
        lens = np.fromiter((r[1] for r in regions), dtype=np.int64, count=len(regions))
        order = np.argsort(offs, kind="stable")
        self.offsets = offs[order]
        self.ends = self.offsets + lens[order]
        self.ranks = order.astype(np.int64)
        active = lens[order] > 0
        self.lo = int(self.offsets[active].min()) if active.any() else 0
        self.hi = int(self.ends[active].max()) if active.any() else 0

    @property
    def size(self) -> int:
        """Number of participating ranks."""
        return len(self.ranks)

    @property
    def total_bytes(self) -> int:
        """Sum of all region lengths."""
        return int((self.ends - self.offsets).sum())

    def senders_overlapping(self, lo: int, hi: int) -> list[tuple[int, int, int]]:
        """Ranks whose region intersects ``[lo, hi)``.

        Returns ``(rank, overlap_lo, overlap_hi)`` triples.  O(log n + k)
        via binary search on the sorted offsets (regions from checkpoint
        writes are non-overlapping and near-sorted).
        """
        if hi <= lo:
            return []
        # Candidate window: regions starting before hi...
        j = int(np.searchsorted(self.offsets, hi, side="left"))
        out = []
        # ...scan backwards while regions can still overlap.  Checkpoint
        # regions are contiguous per rank and non-overlapping, so once
        # region end <= lo for a few consecutive entries we can stop; to be
        # robust to unequal sizes we scan until offsets drop below
        # lo - max_len, bounded by the window start.
        i = j - 1
        while i >= 0:
            o = int(self.offsets[i])
            e = int(self.ends[i])
            if e > lo and e > o:
                out.append((int(self.ranks[i]), max(o, lo), min(e, hi)))
            elif e == o:
                # Zero-length region: contributes nothing but must not end
                # the scan (it can sit at the same offset as a real region).
                pass
            else:
                # Non-empty region ending at/before lo: with non-overlapping
                # regions every earlier non-empty region also ends there.
                break
            i -= 1
        out.reverse()
        return out


class FileDomains:
    """Partition of a byte range into per-aggregator file domains.

    With ``align=True`` (BG/P ROMIO behaviour) every interior domain
    boundary is rounded up to an *absolute* file-system block multiple, so
    no two aggregators ever write the same block — the Liao & Choudhary
    alignment optimization that avoids lock conflicts and read-modify-write
    on GPFS.  Unaligned mode splits the range evenly by bytes (the classic
    ROMIO default), placing boundaries mid-block.

    Boundaries are computed arithmetically (O(1) per query), which matters
    when 65,536 ranks each consult the same partition.
    """

    __slots__ = ("lo", "hi", "n_domains", "block_size", "align", "_chunk")

    def __init__(self, lo: int, hi: int, n_domains: int,
                 block_size: int, align: bool = True) -> None:
        if hi < lo:
            raise ValueError(f"inverted range [{lo}, {hi})")
        if n_domains < 1:
            raise ValueError("need at least one domain")
        self.lo = lo
        self.hi = hi
        self.n_domains = n_domains
        self.block_size = max(int(block_size), 1)
        self.align = align
        span = hi - lo
        self._chunk = max(-(-span // n_domains), 1) if span else 1

    def _boundary(self, k: int) -> int:
        """Absolute file offset of the boundary before domain ``k``."""
        if k <= 0:
            return self.lo
        if k >= self.n_domains:
            return self.hi
        b = self.lo + k * self._chunk
        if self.align:
            bs = self.block_size
            b = -(-b // bs) * bs
        return min(b, self.hi)

    def domain(self, k: int) -> tuple[int, int]:
        """Byte range ``[lo, hi)`` of domain ``k`` (may be empty)."""
        if not 0 <= k < self.n_domains:
            raise ValueError(f"domain {k} out of range")
        return (self._boundary(k), self._boundary(k + 1))

    def domains_overlapping(self, lo: int, hi: int) -> range:
        """Indices of domains intersecting ``[lo, hi)``.

        O(1): estimates the first/last indices from the raw chunk size and
        corrects for alignment rounding locally.
        """
        if hi <= lo or lo >= self.hi or hi <= self.lo:
            return range(0)
        lo = max(lo, self.lo)
        hi = min(hi, self.hi)
        # Estimate, then walk (alignment moves boundaries < one block).
        first = max(0, min(self.n_domains - 1, (lo - self.lo) // self._chunk))
        while first > 0 and self._boundary(first) > lo:
            first -= 1
        while first < self.n_domains - 1 and self._boundary(first + 1) <= lo:
            first += 1
        last = max(0, min(self.n_domains - 1, (hi - 1 - self.lo) // self._chunk))
        while last < self.n_domains - 1 and self._boundary(last + 1) < hi:
            last += 1
        while last > 0 and self._boundary(last) >= hi:
            last -= 1
        return range(int(first), int(last) + 1)


@lru_cache(maxsize=256)
def _aggregator_placement(comm_size: int, n_aggregators: int) -> tuple[int, ...]:
    if n_aggregators < 1 or n_aggregators > comm_size:
        raise ValueError(f"bad aggregator count {n_aggregators} for size {comm_size}")
    stride = comm_size // n_aggregators
    return tuple(k * stride for k in range(n_aggregators))


def pick_aggregators(comm_size: int, n_aggregators: int) -> list[int]:
    """Evenly spread aggregator ranks over the communicator.

    Mirrors the BG/P placement rule: aggregators are distributed over the
    topology so no node hosts more than one (rank striding achieves this
    under block rank-to-node placement).  The placement is a pure function
    of ``(comm_size, n_aggregators)`` and is memoized: every rank of every
    collective call consults the same few geometries (hot paths use the
    cached tuple via :func:`_aggregator_placement` directly).
    """
    return list(_aggregator_placement(comm_size, n_aggregators))


def pick_node_aggregators(leaders, n_aggregators: int) -> tuple[int, ...]:
    """Node-aware aggregator placement for the two-level (TAM) exchange.

    Inter-node aggregators are chosen *among node leaders* — under TAM
    only leaders carry inter-node traffic, so placing an aggregator on a
    non-leader rank would reintroduce the per-rank fan-in TAM exists to
    remove.  The count is clamped to the number of nodes (this is how a
    ``cb_nodes`` hint larger than the node count degrades gracefully) and
    leaders are strided evenly, mirroring :func:`pick_aggregators`.
    """
    n = max(1, min(n_aggregators, len(leaders)))
    stride = len(leaders) // n
    return tuple(leaders[k * stride] for k in range(n))


class TamExchange:
    """Shared geometry of one two-level (TAM) collective write call.

    Built exactly once per call via ``allgather(map_fn=...)`` from the
    raw per-rank ``(offset, nbytes)`` regions, and consulted read-only by
    every participant (the same single-construction discipline as
    :class:`RegionMap`).  Encodes who sends what where:

    - every rank forwards its extent to its node **leader** over shared
      memory (no fabric traffic);
    - each leader clips its node's coalesced extents against the file
      domains and sends one message per *touched domain* to that domain's
      aggregator — O(nodes x aggregators) inter-node messages instead of
      the flat exchange's O(np x aggregators);
    - aggregators overlay the received pieces and commit, exactly like
      the flat path, so file images stay bit-identical.
    """

    __slots__ = ("raw", "regions", "groups", "domains", "aggregators",
                 "send_domains", "expected")

    def __init__(self, raw_regions: list, groups, n_aggregators: int,
                 block_size: int, align: bool = True) -> None:
        self.raw = tuple(raw_regions)
        self.regions = RegionMap(list(raw_regions))
        self.groups = groups
        leaders = groups.leaders
        self.aggregators = pick_node_aggregators(leaders, n_aggregators)
        self.domains = FileDomains(
            self.regions.lo, self.regions.hi, len(self.aggregators),
            block_size, align=align)
        # Per-leader: which domains its node's members touch.  Every listed
        # domain is guaranteed at least one non-empty piece from that node
        # (overlap is computed per member region), so no aggregator ever
        # waits for a message that is never sent.
        send_domains: dict[int, tuple[int, ...]] = {}
        for lead in leaders:
            touched: set[int] = set()
            for m in groups.members_of[lead]:
                off, length = self.raw[m]
                if length > 0:
                    touched.update(
                        self.domains.domains_overlapping(off, off + length))
            if touched:
                send_domains[lead] = tuple(sorted(touched))
        self.send_domains = send_domains
        # Per-domain: which leaders the aggregator must receive from
        # (leaders in ascending order; an aggregator's own node's pieces
        # are staged locally, not messaged).
        expected: dict[int, list[int]] = {k: [] for k in
                                          range(len(self.aggregators))}
        for lead in leaders:
            for k in send_domains.get(lead, ()):
                if self.aggregators[k] != lead:
                    expected[k].append(lead)
        self.expected = {k: tuple(v) for k, v in expected.items()}
