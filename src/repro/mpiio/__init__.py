"""ROMIO-like MPI-IO layer: collective buffering, file domains, hints."""

from .aggregation import (
    FileDomains,
    RegionMap,
    TamExchange,
    pick_aggregators,
    pick_node_aggregators,
)
from .file import MPIFile, SplitRequest
from .hints import Hints, TAM_MODES

__all__ = [
    "FileDomains",
    "RegionMap",
    "TamExchange",
    "pick_aggregators",
    "pick_node_aggregators",
    "MPIFile",
    "SplitRequest",
    "Hints",
    "TAM_MODES",
]
