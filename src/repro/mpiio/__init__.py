"""ROMIO-like MPI-IO layer: collective buffering, file domains, hints."""

from .aggregation import FileDomains, RegionMap, pick_aggregators
from .file import MPIFile, SplitRequest
from .hints import Hints

__all__ = [
    "FileDomains",
    "RegionMap",
    "pick_aggregators",
    "MPIFile",
    "SplitRequest",
    "Hints",
]
