"""MPI-IO file interface: open, independent and collective writes, close.

Implements the ROMIO subset the paper's three checkpoint approaches use:

- ``MPI_File_open`` — collective create/open over a communicator
  (:meth:`MPIFile.open`), or independent ``MPI_COMM_SELF`` open
  (:meth:`MPIFile.open_independent`, the rbIO nf=ng writer path).
- ``MPI_File_write_at`` — independent write (:meth:`MPIFile.write_at`).
- ``MPI_File_write_at_all_begin`` / ``_end`` — split-collective two-phase
  write (:meth:`MPIFile.write_at_all_begin` / :meth:`write_at_all_end`),
  with :meth:`write_at_all` as the blocking composition.
- ``MPI_File_close`` — collective close.

The collective write follows BG/P ROMIO: access regions are exchanged, the
touched range is split into block-aligned file domains, one per designated
aggregator (``Hints.ranks_per_aggregator``, default 1:32), data is shuffled
point-to-point to aggregators, and each aggregator commits its domain in
``cb_buffer_size`` bursts.  All participants synchronize before returning —
the collective blocking the paper's rbIO is designed to avoid.
"""

from __future__ import annotations

from typing import Optional

from ..buffers import ByteRope, overlay
from ..faults.retry import retry_fs
from ..mpi import CommView, RankContext
from ..sim import Process
from ..storage import FSClient, FileHandle
from .aggregation import FileDomains, RegionMap, _aggregator_placement
from .hints import Hints

__all__ = ["MPIFile", "SplitRequest"]

_SHUFFLE_TAG_BASE = 1 << 20


class SplitRequest:
    """Outstanding split-collective write (returned by write_at_all_begin)."""

    __slots__ = ("process",)

    def __init__(self, process: Process) -> None:
        self.process = process

    @property
    def complete(self) -> bool:
        """Whether the split collective has finished."""
        return not self.process.is_alive


class MPIFile:
    """An open MPI-IO file as seen by one rank.

    Construct via the generator classmethods :meth:`open` (collective) or
    :meth:`open_independent` (``MPI_COMM_SELF``).
    """

    def __init__(self, comm: Optional[CommView], fs: FSClient,
                 handle: FileHandle, path: str, hints: Hints) -> None:
        self.comm = comm
        self.fs = fs
        self.handle = handle
        self.path = path
        self.hints = hints
        self._call_seq = 0
        self._staged: dict[int, list] = {}
        self.closed = False

    # ------------------------------------------------------------------
    # Opening
    # ------------------------------------------------------------------
    @classmethod
    def open(cls, ctx: RankContext, comm: CommView, path: str,
             hints: Optional[Hints] = None):
        """Generator: collective create-or-open over ``comm``.

        Rank 0 of the communicator creates the file; everyone else opens it
        after a barrier (ROMIO's shared-file open protocol).
        """
        hints = hints or Hints()
        eng = ctx.fs.fs.engine
        if comm.size == 1:
            handle = yield from retry_fs(eng, lambda: ctx.fs.create(path))
            return cls(comm, ctx.fs, handle, path, hints)
        if comm.rank == 0:
            handle = yield from retry_fs(eng, lambda: ctx.fs.create(path))
            yield from comm.barrier()
        else:
            yield from comm.barrier()
            handle = yield from retry_fs(
                eng, lambda: ctx.fs.open(path, write=True))
        return cls(comm, ctx.fs, handle, path, hints)

    @classmethod
    def open_independent(cls, ctx: RankContext, path: str,
                         hints: Optional[Hints] = None):
        """Generator: independent (MPI_COMM_SELF) create of ``path``.

        This is the rbIO nf=ng writer path: one sole-owner file per writer,
        no collective synchronization, no shared-file lock traffic.
        """
        handle = yield from retry_fs(
            ctx.fs.fs.engine, lambda: ctx.fs.create(path))
        return cls(None, ctx.fs, handle, path, hints or Hints())

    # ------------------------------------------------------------------
    # Independent I/O
    # ------------------------------------------------------------------
    def write_at(self, offset: int, nbytes: int, payload: Optional[bytes] = None):
        """Generator: independent write (MPI_File_write_at)."""
        self._check_open()
        yield from retry_fs(
            self.fs.fs.engine,
            lambda: self.fs.write(self.handle, offset, nbytes, payload=payload))

    def read_at(self, offset: int, nbytes: int):
        """Generator: independent read; returns stored bytes."""
        self._check_open()
        data = yield from self.fs.read(self.handle, offset, nbytes)
        return data

    # ------------------------------------------------------------------
    # Collective I/O
    # ------------------------------------------------------------------
    def write_at_all(self, offset: int, nbytes: int, payload: Optional[bytes] = None):
        """Generator: blocking collective write (two-phase).

        Runs the two-phase exchange inline in the calling rank's process:
        unlike the split-collective begin/end pair there is nothing to
        overlap, so spawning a dedicated process per rank per call (the
        dominant object churn of coIO runs) would buy nothing.
        """
        self._check_open()
        if self.comm is None:
            raise RuntimeError("collective write on an independently opened file")
        seq = self._call_seq
        self._call_seq += 1
        yield from self._two_phase(seq, offset, nbytes, payload)

    def write_at_all_begin(self, offset: int, nbytes: int,
                           payload: Optional[bytes] = None) -> SplitRequest:
        """Start a split-collective write; returns a :class:`SplitRequest`.

        Every rank of the file's communicator must call begin (and later
        end) in the same order.
        """
        self._check_open()
        if self.comm is None:
            raise RuntimeError("collective write on an independently opened file")
        seq = self._call_seq
        self._call_seq += 1
        proc = self.fs.fs.engine.process(
            self._two_phase(seq, offset, nbytes, payload),
            name=f"waa-{self.path}-{seq}-r{self.comm.rank}",
        )
        return SplitRequest(proc)

    def write_at_all_end(self, req: SplitRequest):
        """Generator: complete a split-collective write."""
        yield req.process

    def _two_phase(self, seq: int, offset: int, nbytes: int,
                   payload: Optional[bytes]):
        """The two-phase collective write, executed per rank.

        Payloads travel as zero-copy ropes end to end: phase 1 slices each
        rank's contribution into per-domain segment views and ships the
        *references* (region descriptors + views, never reassembled bytes);
        phase 2 overlays the received views into the aggregator's domain
        rope and commits it in bursts.
        """
        comm = self.comm
        cfg = self.fs.fs.config
        hints = self.hints
        tag = _SHUFFLE_TAG_BASE + seq
        if payload is not None:
            payload = ByteRope.wrap(payload)

        # Phase 0: exchange access regions (one shared RegionMap built).
        regions: RegionMap = yield from comm.allgather(
            (offset, nbytes), nbytes=16, map_fn=RegionMap
        )
        if regions.hi <= regions.lo:
            # Nothing to write anywhere: still synchronize.
            yield from comm.barrier()
            return

        n_aggs = hints.n_aggregators(comm.size)
        domains = FileDomains(
            regions.lo, regions.hi, n_aggs,
            cfg.fs_block_size, align=hints.align_file_domains,
        )
        aggregators = _aggregator_placement(comm.size, n_aggs)

        # Phase 1: shuffle — send my data to the aggregator(s) owning it.
        send_reqs = []
        if nbytes > 0:
            my_lo, my_hi = offset, offset + nbytes
            for k in domains.domains_overlapping(my_lo, my_hi):
                dlo, dhi = domains.domain(k)
                lo = max(my_lo, dlo)
                hi = min(my_hi, dhi)
                if hi <= lo:
                    continue
                dest = aggregators[k]
                part = None
                if payload is not None:
                    part = payload[lo - my_lo : hi - my_lo]
                if dest == comm.rank:
                    # Self-contribution: no message needed.
                    self._stage_local(tag, lo, hi, part)
                else:
                    send_reqs.append(
                        comm.isend(dest, hi - lo, tag=tag,
                                   payload=(lo, hi, part))
                    )

        # Phase 2: aggregators receive their domain and commit it.
        my_agg_index = None
        if comm.rank in aggregators:
            my_agg_index = aggregators.index(comm.rank)
        if my_agg_index is not None:
            dlo, dhi = domains.domain(my_agg_index)
            senders = regions.senders_overlapping(dlo, dhi)
            pieces: list[tuple[int, int, Optional[bytes]]] = self._staged.pop(tag, [])
            expected = [s for s in senders if s[0] != comm.rank]
            for src, _lo, _hi in expected:
                msg = yield from comm.recv(source=src, tag=tag)
                pieces.append(msg.payload)
            yield from self._commit_domain(dlo, dhi, pieces)

        if send_reqs:
            yield from comm.waitall(send_reqs)
        yield from comm.barrier()

    def _stage_local(self, tag: int, lo: int, hi: int, part: Optional[bytes]) -> None:
        """Stage this rank's own contribution for its aggregator role."""
        self._staged.setdefault(tag, []).append((lo, hi, part))

    def _commit_domain(self, dlo: int, dhi: int,
                       pieces: list[tuple[int, int, Optional[bytes]]]):
        """Aggregator side: write the covered part of the domain in bursts.

        The received segment views are overlaid (offset-sorted, later
        shadows earlier — identical to the old ``bytearray`` assembly
        order) into one domain rope; no reassembly copy happens, the rope
        materializes at the file system's extent commit.
        """
        if not pieces:
            return
        pieces.sort(key=lambda p: p[0])
        lo = pieces[0][0]
        hi = max(p[1] for p in pieces)
        have_payload = any(p[2] is not None for p in pieces)
        data: Optional[ByteRope] = None
        if have_payload:
            data = overlay(((plo, part) for plo, _phi, part in pieces
                            if part is not None), lo, hi)
        # Commit in collective-buffer-sized bursts.
        cb = self.hints.cb_buffer_size
        eng = self.fs.fs.engine
        pos = lo
        while pos < hi:
            burst = min(cb, hi - pos)
            chunk = data[pos - lo : pos - lo + burst] if data is not None else None
            yield from retry_fs(
                eng,
                lambda p=pos, b=burst, c=chunk:
                    self.fs.write(self.handle, p, b, payload=c))
            pos += burst

    # ------------------------------------------------------------------
    # Closing
    # ------------------------------------------------------------------
    def close(self):
        """Generator: close the file (collective when opened collectively)."""
        self._check_open()
        self.closed = True
        if self.comm is not None and self.comm.size > 1:
            yield from self.comm.barrier()
        yield from self.fs.close(self.handle)
        if self.comm is not None and self.comm.size > 1:
            yield from self.comm.barrier()

    def _check_open(self) -> None:
        if self.closed:
            raise RuntimeError(f"operation on closed MPI file {self.path!r}")
