"""MPI-IO file interface: open, independent and collective writes, close.

Implements the ROMIO subset the paper's three checkpoint approaches use:

- ``MPI_File_open`` — collective create/open over a communicator
  (:meth:`MPIFile.open`), or independent ``MPI_COMM_SELF`` open
  (:meth:`MPIFile.open_independent`, the rbIO nf=ng writer path).
- ``MPI_File_write_at`` — independent write (:meth:`MPIFile.write_at`).
- ``MPI_File_write_at_all_begin`` / ``_end`` — split-collective two-phase
  write (:meth:`MPIFile.write_at_all_begin` / :meth:`write_at_all_end`),
  with :meth:`write_at_all` as the blocking composition.
- ``MPI_File_close`` — collective close.

The collective write follows BG/P ROMIO: access regions are exchanged, the
touched range is split into block-aligned file domains, one per designated
aggregator (``Hints.ranks_per_aggregator``, default 1:32), data is shuffled
point-to-point to aggregators, and each aggregator commits its domain in
``cb_buffer_size`` bursts.  All participants synchronize before returning —
the collective blocking the paper's rbIO is designed to avoid.
"""

from __future__ import annotations

from typing import Any, Optional

from .. import trace as _trace
from ..buffers import ByteRope, overlay
from ..faults.retry import retry_fs
from ..mpi import CommView, RankContext
from ..sim import Process
from ..storage import FSClient, FileHandle
from ..topology import NodeGroups
from .aggregation import FileDomains, RegionMap, TamExchange, \
    _aggregator_placement
from .hints import Hints

__all__ = ["MPIFile", "SplitRequest"]

_SHUFFLE_TAG_BASE = 1 << 20
#: Tag space of the intra-node (rank -> node leader) TAM shuffle; disjoint
#: from the inter-node shuffle tags so both phases of one call coexist.
_TAM_TAG_BASE = 1 << 22

_UNSET = object()


class SplitRequest:
    """Outstanding split-collective write (returned by write_at_all_begin)."""

    __slots__ = ("process",)

    def __init__(self, process: Process) -> None:
        self.process = process

    @property
    def complete(self) -> bool:
        """Whether the split collective has finished."""
        return not self.process.is_alive


class MPIFile:
    """An open MPI-IO file as seen by one rank.

    Construct via the generator classmethods :meth:`open` (collective) or
    :meth:`open_independent` (``MPI_COMM_SELF``).
    """

    def __init__(self, comm: Optional[CommView], fs: FSClient,
                 handle: FileHandle, path: str, hints: Hints) -> None:
        self.comm = comm
        self.fs = fs
        self.handle = handle
        self.path = path
        self.hints = hints
        self._call_seq = 0
        self._staged: dict[int, list] = {}
        self._tam_groups_cache: Any = _UNSET
        self.closed = False

    # ------------------------------------------------------------------
    # Opening
    # ------------------------------------------------------------------
    @classmethod
    def open(cls, ctx: RankContext, comm: CommView, path: str,
             hints: Optional[Hints] = None):
        """Generator: collective create-or-open over ``comm``.

        Rank 0 of the communicator creates the file; everyone else opens it
        after a barrier (ROMIO's shared-file open protocol).
        """
        hints = hints or Hints()
        eng = ctx.fs.fs.engine
        if comm.size == 1:
            handle = yield from retry_fs(eng, lambda: ctx.fs.create(path))
            return cls(comm, ctx.fs, handle, path, hints)
        if comm.rank == 0:
            handle = yield from retry_fs(eng, lambda: ctx.fs.create(path))
            yield from comm.barrier()
        else:
            yield from comm.barrier()
            handle = yield from retry_fs(
                eng, lambda: ctx.fs.open(path, write=True))
        return cls(comm, ctx.fs, handle, path, hints)

    @classmethod
    def open_independent(cls, ctx: RankContext, path: str,
                         hints: Optional[Hints] = None):
        """Generator: independent (MPI_COMM_SELF) create of ``path``.

        This is the rbIO nf=ng writer path: one sole-owner file per writer,
        no collective synchronization, no shared-file lock traffic.
        """
        handle = yield from retry_fs(
            ctx.fs.fs.engine, lambda: ctx.fs.create(path))
        return cls(None, ctx.fs, handle, path, hints or Hints())

    # ------------------------------------------------------------------
    # Independent I/O
    # ------------------------------------------------------------------
    def write_at(self, offset: int, nbytes: int, payload: Optional[bytes] = None):
        """Generator: independent write (MPI_File_write_at)."""
        self._check_open()
        yield from retry_fs(
            self.fs.fs.engine,
            lambda: self.fs.write(self.handle, offset, nbytes, payload=payload))

    def read_at(self, offset: int, nbytes: int):
        """Generator: independent read; returns stored bytes."""
        self._check_open()
        data = yield from self.fs.read(self.handle, offset, nbytes)
        return data

    # ------------------------------------------------------------------
    # Collective I/O
    # ------------------------------------------------------------------
    def write_at_all(self, offset: int, nbytes: int, payload: Optional[bytes] = None):
        """Generator: blocking collective write (two-phase).

        Runs the two-phase exchange inline in the calling rank's process:
        unlike the split-collective begin/end pair there is nothing to
        overlap, so spawning a dedicated process per rank per call (the
        dominant object churn of coIO runs) would buy nothing.
        """
        self._check_open()
        if self.comm is None:
            raise RuntimeError("collective write on an independently opened file")
        seq = self._call_seq
        self._call_seq += 1
        yield from self._two_phase(seq, offset, nbytes, payload)

    def write_at_all_begin(self, offset: int, nbytes: int,
                           payload: Optional[bytes] = None) -> SplitRequest:
        """Start a split-collective write; returns a :class:`SplitRequest`.

        Every rank of the file's communicator must call begin (and later
        end) in the same order.
        """
        self._check_open()
        if self.comm is None:
            raise RuntimeError("collective write on an independently opened file")
        seq = self._call_seq
        self._call_seq += 1
        proc = self.fs.fs.engine.process(
            self._two_phase(seq, offset, nbytes, payload),
            name=f"waa-{self.path}-{seq}-r{self.comm.rank}",
        )
        return SplitRequest(proc)

    def write_at_all_end(self, req: SplitRequest):
        """Generator: complete a split-collective write."""
        yield req.process

    def _two_phase(self, seq: int, offset: int, nbytes: int,
                   payload: Optional[bytes]):
        """The two-phase collective write, executed per rank.

        Payloads travel as zero-copy ropes end to end: phase 1 slices each
        rank's contribution into per-domain segment views and ships the
        *references* (region descriptors + views, never reassembled bytes);
        phase 2 overlays the received views into the aggregator's domain
        rope and commits it in bursts.
        """
        comm = self.comm
        cfg = self.fs.fs.config
        hints = self.hints
        tag = _SHUFFLE_TAG_BASE + seq
        if payload is not None:
            payload = ByteRope.wrap(payload)

        groups = self._node_groups()
        if groups is not None:
            yield from self._two_phase_tam(seq, offset, nbytes, payload,
                                           groups)
            return
        eng = self.fs.fs.engine
        t_x0 = eng.now

        # Phase 0: exchange access regions (one shared RegionMap built).
        regions: RegionMap = yield from comm.allgather(
            (offset, nbytes), nbytes=16, map_fn=RegionMap
        )
        if regions.hi <= regions.lo:
            # Nothing to write anywhere: still synchronize.
            yield from comm.barrier()
            return

        n_aggs = hints.n_aggregators(comm.size)
        domains = FileDomains(
            regions.lo, regions.hi, n_aggs,
            cfg.fs_block_size, align=hints.align_file_domains,
        )
        aggregators = _aggregator_placement(comm.size, n_aggs)

        # Phase 1: shuffle — send my data to the aggregator(s) owning it.
        send_reqs = []
        if nbytes > 0:
            my_lo, my_hi = offset, offset + nbytes
            for k in domains.domains_overlapping(my_lo, my_hi):
                dlo, dhi = domains.domain(k)
                lo = max(my_lo, dlo)
                hi = min(my_hi, dhi)
                if hi <= lo:
                    continue
                dest = aggregators[k]
                part = None
                if payload is not None:
                    part = payload[lo - my_lo : hi - my_lo]
                if dest == comm.rank:
                    # Self-contribution: no message needed.
                    self._stage_local(tag, lo, hi, part)
                else:
                    send_reqs.append(
                        comm.isend(dest, hi - lo, tag=tag,
                                   payload=(lo, hi, part))
                    )

        # Phase 2: aggregators receive their domain and commit it.
        my_agg_index = None
        if comm.rank in aggregators:
            my_agg_index = aggregators.index(comm.rank)
        if my_agg_index is not None:
            dlo, dhi = domains.domain(my_agg_index)
            senders = regions.senders_overlapping(dlo, dhi)
            pieces: list[tuple[int, int, Optional[bytes]]] = self._staged.pop(tag, [])
            expected = [s for s in senders if s[0] != comm.rank]
            for src, _lo, _hi in expected:
                msg = yield from comm.recv(source=src, tag=tag)
                pieces.append(msg.payload)
            yield from self._commit_domain(dlo, dhi, pieces)

        if send_reqs:
            yield from comm.waitall(send_reqs)
        yield from comm.barrier()
        tr = _trace.tracer
        if tr is not None:
            tr.span(comm.world_rank, "exchange", "mpiio", t_x0, eng.now,
                    nbytes, args={"path": self.path, "seq": seq})

    def _node_groups(self) -> Optional[NodeGroups]:
        """Node co-residency of the file's communicator, or ``None``.

        ``None`` means the flat exchange runs: TAM is off, the file is
        independently opened, or no node hosts two ranks (nothing to
        coalesce — ``tam="require"`` raises instead of degrading
        silently).  Cached per file; the communicator never changes.
        """
        if self._tam_groups_cache is not _UNSET:
            return self._tam_groups_cache
        groups = None
        tam = self.hints.tam
        if tam != "off" and self.comm is not None:
            cpn = self.fs.fs.config.cores_per_node
            candidate = NodeGroups(self.comm.comm.world_ranks, cpn)
            if candidate.nontrivial:
                groups = candidate
            elif tam == "require":
                raise ValueError(
                    f"tam='require' on {self.path!r}: no node hosts more "
                    f"than one rank of the communicator (cores_per_node="
                    f"{cpn}), two-level aggregation cannot engage")
        self._tam_groups_cache = groups
        return groups

    def _two_phase_tam(self, seq: int, offset: int, nbytes: int,
                       payload, groups: NodeGroups):
        """Two-level collective write: intra-node coalesce, then exchange.

        Phase 1a ships each rank's extent to its node leader over shared
        memory (intra-node transfer — no torus traffic); phase 1b has each
        leader clip its node's extents against the file domains and send
        *one* message per touched domain to that domain's aggregator
        (``Fabric.count_tam`` records the coalescing).  Phase 2 is the
        flat path's aggregator commit verbatim — the clipped piece set is
        identical to what the flat exchange produces, piece by piece, so
        the overlaid file image is bit-exact.  Payloads stay zero-copy
        ropes throughout: leaders forward slices of members' ropes, never
        reassembled bytes.
        """
        comm = self.comm
        cfg = self.fs.fs.config
        tag_intra = _TAM_TAG_BASE + seq
        tag_inter = _SHUFFLE_TAG_BASE + seq
        hints = self.hints
        eng = self.fs.fs.engine
        t_x0 = eng.now

        def build(raw):
            return TamExchange(raw, groups, hints.n_aggregators(comm.size),
                               cfg.fs_block_size,
                               align=hints.align_file_domains)

        ex: TamExchange = yield from comm.allgather(
            (offset, nbytes), nbytes=16, map_fn=build)
        if ex.regions.hi <= ex.regions.lo:
            yield from comm.barrier()
            return

        me = comm.rank
        lead = groups.leader_of[me]
        send_reqs = []
        if lead != me:
            # Phase 1a: hand my extent to my node's leader (shared memory).
            if nbytes > 0:
                send_reqs.append(
                    comm.isend(lead, nbytes, tag=tag_intra,
                               payload=(offset, nbytes, payload)))
        else:
            # Leader: coalesce the node's extents...
            t_g0 = eng.now
            parts: list[tuple[int, int, Optional[ByteRope]]] = []
            if nbytes > 0:
                parts.append((offset, nbytes, payload))
            for m in groups.members_of[me][1:]:
                if ex.raw[m][1] > 0:
                    msg = yield from comm.recv(source=m, tag=tag_intra)
                    parts.append(msg.payload)
            # ...and forward one message per touched domain (phase 1b).
            fabric = comm.comm.fabric
            for k in ex.send_domains.get(me, ()):
                dlo, dhi = ex.domains.domain(k)
                pieces = []
                total = 0
                for p_off, p_len, p_pay in parts:
                    lo = max(p_off, dlo)
                    hi = min(p_off + p_len, dhi)
                    if hi <= lo:
                        continue
                    part = None
                    if p_pay is not None:
                        part = p_pay[lo - p_off : hi - p_off]
                    pieces.append((lo, hi, part))
                    total += hi - lo
                dest = ex.aggregators[k]
                if dest == me:
                    self._staged.setdefault(tag_inter, []).extend(pieces)
                else:
                    fabric.count_tam(len(pieces))
                    send_reqs.append(
                        comm.isend(dest, total, tag=tag_inter,
                                   payload=pieces))
            tr = _trace.tracer
            if tr is not None:
                tr.span(comm.world_rank, "tam-gather", "mpiio", t_g0,
                        eng.now, sum(n for _o, n, _p in parts),
                        args={"path": self.path, "seq": seq,
                              "members": len(groups.members_of[me])})

        # Phase 2: aggregators overlay and commit, as in the flat path.
        if me in ex.aggregators:
            k = ex.aggregators.index(me)
            dlo, dhi = ex.domains.domain(k)
            pieces = self._staged.pop(tag_inter, [])
            for src in ex.expected[k]:
                msg = yield from comm.recv(source=src, tag=tag_inter)
                pieces.extend(msg.payload)
            yield from self._commit_domain(dlo, dhi, pieces)

        if send_reqs:
            yield from comm.waitall(send_reqs)
        yield from comm.barrier()
        tr = _trace.tracer
        if tr is not None:
            tr.span(comm.world_rank, "exchange", "mpiio", t_x0, eng.now,
                    nbytes, args={"path": self.path, "seq": seq,
                                  "tam": True})

    def _stage_local(self, tag: int, lo: int, hi: int, part: Optional[bytes]) -> None:
        """Stage this rank's own contribution for its aggregator role."""
        self._staged.setdefault(tag, []).append((lo, hi, part))

    def _commit_domain(self, dlo: int, dhi: int,
                       pieces: list[tuple[int, int, Optional[bytes]]]):
        """Aggregator side: write the covered part of the domain in bursts.

        The received segment views are overlaid (offset-sorted, later
        shadows earlier — identical to the old ``bytearray`` assembly
        order) into one domain rope; no reassembly copy happens, the rope
        materializes at the file system's extent commit.
        """
        if not pieces:
            return
        pieces.sort(key=lambda p: p[0])
        lo = pieces[0][0]
        hi = max(p[1] for p in pieces)
        have_payload = any(p[2] is not None for p in pieces)
        data: Optional[ByteRope] = None
        if have_payload:
            data = overlay(((plo, part) for plo, _phi, part in pieces
                            if part is not None), lo, hi)
        # Commit in collective-buffer-sized bursts.
        cb = self.hints.cb_buffer_size
        eng = self.fs.fs.engine
        t_w0 = eng.now
        pos = lo
        while pos < hi:
            burst = min(cb, hi - pos)
            chunk = data[pos - lo : pos - lo + burst] if data is not None else None
            yield from retry_fs(
                eng,
                lambda p=pos, b=burst, c=chunk:
                    self.fs.write(self.handle, p, b, payload=c))
            pos += burst
        tr = _trace.tracer
        if tr is not None:
            rank = self.fs.rank if self.comm is None else self.comm.world_rank
            tr.span(rank, "commit", "mpiio", t_w0, eng.now, hi - lo,
                    args={"path": self.path, "domain": [dlo, dhi]})

    # ------------------------------------------------------------------
    # Closing
    # ------------------------------------------------------------------
    def close(self):
        """Generator: close the file (collective when opened collectively)."""
        self._check_open()
        self.closed = True
        if self.comm is not None and self.comm.size > 1:
            yield from self.comm.barrier()
        yield from self.fs.close(self.handle)
        if self.comm is not None and self.comm.size > 1:
            yield from self.comm.barrier()

    def _check_open(self) -> None:
        if self.closed:
            raise RuntimeError(f"operation on closed MPI file {self.path!r}")
