"""Fault schedules: what breaks, where, and at which simulated time.

A schedule is an immutable, ordered tuple of :class:`FaultSpec` records.
It can be written out literally (the test matrix does) or drawn from a
:class:`~repro.sim.StreamRegistry` stream via :meth:`FaultSchedule.generate`
so that one root seed determines every fault of a campaign — the same
contract the rest of the simulator honours for service-time noise.  Two
schedules generated from equal seeds and configs are equal element for
element, which is what makes fault campaigns bit-reproducible.

Spec kinds and the layer they hook (see :mod:`repro.faults.injector`):

========================  =====================================================
kind                      effect
========================  =====================================================
``fs_error``              an FS operation raises :class:`~repro.storage.FSError`
                          (``transient`` selects retryable vs. fatal)
``fs_stall``              an FS operation pauses ``delay`` seconds first
``fs_slow``               server service inflates by ``factor`` for ``duration``
``net_degrade``           fabric transfers stretch by ``factor`` in the window
``net_drop``              fabric transfers pay ``delay`` of link-level
                          retransmission in the window (BG/P links are
                          reliable; drops surface as latency, not loss)
``rank_crash``            the rank is dead from ``time`` on (checked at
                          coordinated step boundaries)
``buffer_loss``           a burst-buffer device is lost with all residents
``bit_rot``               a resident staged package is corrupted in place
``replica_corrupt``       a partner replica is corrupted in place
========================  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Iterator, Mapping, Optional, Sequence

from ..sim import StreamRegistry

__all__ = ["FAULT_KINDS", "FaultSpec", "FaultConfig", "FaultSchedule"]

FAULT_KINDS = (
    "fs_error",
    "fs_stall",
    "fs_slow",
    "net_degrade",
    "net_drop",
    "rank_crash",
    "buffer_loss",
    "bit_rot",
    "replica_corrupt",
)

#: Kinds that arm the file-system operation hook.
FS_KINDS = ("fs_error", "fs_stall")
#: Kinds that arm the fabric transfer hook.
NET_KINDS = ("net_degrade", "net_drop")
#: Kinds fired by absolute-time callbacks against the staging tier / FS.
TIMER_KINDS = ("fs_slow", "buffer_loss", "bit_rot", "replica_corrupt")


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault (see the module table for kind semantics).

    Matching fields (``rank``, ``op``, ``path``) are filters for the
    operation-hook kinds; ``None`` matches anything.  ``count`` bounds how
    many operations an ``fs_error``/``fs_stall`` spec hits once armed.
    """

    kind: str
    time: float = 0.0
    rank: Optional[int] = None
    op: Optional[str] = None
    path: Optional[str] = None
    count: int = 1
    duration: float = 0.0
    factor: float = 1.0
    delay: float = 0.0
    transient: bool = True
    step: Optional[int] = None
    group: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"expected one of {FAULT_KINDS}")
        if self.time < 0:
            raise ValueError(f"negative fault time: {self.time}")
        if self.count < 1:
            raise ValueError(f"count must be >= 1, got {self.count}")
        if self.duration < 0 or self.delay < 0:
            raise ValueError("duration/delay must be non-negative")
        if self.factor <= 0:
            raise ValueError(f"factor must be positive, got {self.factor}")
        if self.kind == "rank_crash" and self.rank is None:
            raise ValueError("rank_crash needs an explicit rank")
        if self.kind == "buffer_loss" and self.rank is None:
            raise ValueError("buffer_loss needs the rank whose buffer is lost")
        if self.kind in ("bit_rot", "replica_corrupt") and self.group is None:
            raise ValueError(f"{self.kind} needs the target group")

    def to_dict(self) -> dict:
        """Plain-data form (campaign specs, JSON transport): non-defaults only."""
        out: dict = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name == "kind" or value != f.default:
                out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, d: Mapping) -> "FaultSpec":
        """Inverse of :meth:`to_dict`; unknown keys raise ``ValueError``."""
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(d) - known)
        if unknown:
            raise ValueError(
                f"unknown fault spec field(s) {unknown}; expected a subset "
                f"of {sorted(known)}")
        if "op" in d and d["op"] is not None:
            d = {**d, "op": str(d["op"])}
        return cls(**d)


@dataclass(frozen=True)
class FaultConfig:
    """Knobs for :meth:`FaultSchedule.generate` (rates over one campaign).

    ``*_errors`` style fields are expected *counts* over the campaign; the
    actual draws (times, target ops, transience) come from the registry's
    ``"faults.schedule"`` stream.  ``horizon`` is the simulated-time window
    fault instants are drawn from — size it to cover the checkpoint steps.
    """

    fs_errors: float = 0.0
    fs_error_ops: Sequence[str] = ("write", "create")
    fs_fatal_fraction: float = 0.0
    fs_stalls: float = 0.0
    stall_seconds: float = 0.5
    writer_crash_prob: float = 0.0
    buffer_loss_prob: float = 0.0
    replica_corrupt_prob: float = 0.0
    net_degrade_prob: float = 0.0
    degrade_factor: float = 4.0
    degrade_duration: float = 1.0
    horizon: float = 10.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "fs_error_ops", tuple(self.fs_error_ops))

    def to_dict(self) -> dict:
        """Plain-data form (campaign specs, JSON transport): non-defaults only."""
        out: dict = {}
        for f in fields(self):
            value = getattr(self, f.name)
            default = (tuple(f.default) if isinstance(f.default, (list, tuple))
                       else f.default)
            if value != default:
                out[f.name] = list(value) if isinstance(value, tuple) else value
        return out

    @classmethod
    def from_dict(cls, d: Mapping) -> "FaultConfig":
        """Inverse of :meth:`to_dict`; unknown keys raise ``ValueError``."""
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(d) - known)
        if unknown:
            raise ValueError(
                f"unknown fault config field(s) {unknown}; expected a subset "
                f"of {sorted(known)}")
        return cls(**d)


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable, time-ordered collection of fault specs."""

    specs: tuple[FaultSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    def __iter__(self) -> Iterator[FaultSpec]:
        return iter(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    def __bool__(self) -> bool:
        return bool(self.specs)

    def by_kind(self, *kinds: str) -> tuple[FaultSpec, ...]:
        """Specs of the given kinds, preserving schedule order."""
        return tuple(s for s in self.specs if s.kind in kinds)

    @classmethod
    def generate(cls, streams: StreamRegistry, n_ranks: int,
                 config: FaultConfig,
                 writer_ranks: Optional[Sequence[int]] = None
                 ) -> "FaultSchedule":
        """Draw a schedule from the registry's ``"faults.schedule"`` stream.

        Equal ``(root seed, n_ranks, config, writer_ranks)`` inputs yield
        identical schedules; the draw order is fixed, so adding a fault
        class to the *config* perturbs only that class's draws.
        """
        rng = streams.stream("faults.schedule")
        cfg = config
        horizon = float(cfg.horizon)
        specs: list[FaultSpec] = []
        targets = list(writer_ranks) if writer_ranks else list(range(n_ranks))

        n_err = int(round(cfg.fs_errors))
        for _ in range(n_err):
            specs.append(FaultSpec(
                kind="fs_error",
                time=float(rng.random()) * horizon,
                op=str(cfg.fs_error_ops[int(rng.integers(len(cfg.fs_error_ops)))]),
                transient=bool(rng.random() >= cfg.fs_fatal_fraction),
            ))
        n_stall = int(round(cfg.fs_stalls))
        for _ in range(n_stall):
            specs.append(FaultSpec(
                kind="fs_stall",
                time=float(rng.random()) * horizon,
                delay=float(cfg.stall_seconds) * (0.5 + float(rng.random())),
            ))
        if cfg.writer_crash_prob > 0 and float(rng.random()) < cfg.writer_crash_prob:
            specs.append(FaultSpec(
                kind="rank_crash",
                time=float(rng.random()) * horizon,
                rank=int(targets[int(rng.integers(len(targets)))]),
            ))
        if cfg.buffer_loss_prob > 0 and float(rng.random()) < cfg.buffer_loss_prob:
            specs.append(FaultSpec(
                kind="buffer_loss",
                time=float(rng.random()) * horizon,
                rank=int(targets[int(rng.integers(len(targets)))]),
            ))
        if cfg.replica_corrupt_prob > 0 and float(rng.random()) < cfg.replica_corrupt_prob:
            specs.append(FaultSpec(
                kind="replica_corrupt",
                time=float(rng.random()) * horizon,
                group=int(rng.integers(max(1, len(targets)))),
            ))
        if cfg.net_degrade_prob > 0 and float(rng.random()) < cfg.net_degrade_prob:
            specs.append(FaultSpec(
                kind="net_degrade",
                time=float(rng.random()) * horizon,
                duration=float(cfg.degrade_duration),
                factor=float(cfg.degrade_factor),
            ))
        # Canonical order: by time, then kind, for stable comparison.
        specs.sort(key=lambda s: (s.time, s.kind))
        return cls(tuple(specs))
