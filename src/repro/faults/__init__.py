"""Deterministic fault injection and the recovery contract (DESIGN.md §10).

The package is the failure half of the checkpointing story: a seeded
:class:`FaultSchedule` describes *what breaks when*, :func:`attach_faults`
wires it into a job's storage/network/rank/staging layers, and the
strategies' resilient paths (retry, rbIO writer failover, bbIO
degradation, checksummed multi-generation restore) turn those faults into
either a bit-identical restart or a typed
:class:`UnrecoverableCheckpointError` — never silent corruption.

Everything is driven by :class:`~repro.sim.StreamRegistry`, so one root
seed reproduces the fault schedule, the injection log, and every recovery
decision bit-for-bit.  With no schedule attached the hooks stay unset and
the simulation is bit-identical to a build without this package.
"""

from .errors import UnrecoverableCheckpointError
from .injector import FaultInjector, attach_faults, faults_of
from .retry import retry_fs
from .schedule import FAULT_KINDS, FaultConfig, FaultSchedule, FaultSpec

__all__ = [
    "FAULT_KINDS",
    "FaultConfig",
    "FaultInjector",
    "FaultSchedule",
    "FaultSpec",
    "UnrecoverableCheckpointError",
    "attach_faults",
    "faults_of",
    "retry_fs",
]
