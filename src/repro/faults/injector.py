"""Schedule-driven fault injector hooking storage, network, ranks, staging.

:func:`attach_faults` builds a :class:`FaultInjector` from a
:class:`~repro.faults.FaultSchedule` and wires it into an assembled
:class:`~repro.mpi.Job`:

* **storage** — every :class:`~repro.storage.FSClient` operation consults
  :meth:`FaultInjector.before_fs_op` first (via ``fs.injector``), which can
  stall the op or raise a contextual :class:`~repro.storage.FSError`;
* **network** — :meth:`FaultInjector.net_adjust` stretches
  :class:`~repro.network.Fabric` transfer completion inside a degradation
  window (via ``fabric.injector``);
* **ranks** — :meth:`FaultInjector.crash_time` / :meth:`dead_at` form a
  deterministic failure-detector oracle the checkpoint runner and the
  rbIO failover consult at step boundaries;
* **staging** — buffer loss / bit-rot / replica corruption fire as
  absolute-time engine callbacks against ``job.services["staging"]``.

The zero-cost contract: when no schedule is attached, ``fs.injector`` and
``fabric.injector`` stay ``None`` and the hot paths skip the hook with one
``is not None`` test — no extra events, no RNG draws, bit-identical
timing.  All injector decisions are functions of the (seeded) schedule and
simulated time, never of wall-clock state, so faulted runs replay exactly.
"""

from __future__ import annotations

from typing import Any, Optional

from .. import trace as _trace
from ..storage import FSError
from .schedule import FS_KINDS, NET_KINDS, FaultSchedule

__all__ = ["FaultInjector", "attach_faults", "faults_of"]


class FaultInjector:
    """Executes one :class:`FaultSchedule` against a running job."""

    def __init__(self, job: Any, schedule: FaultSchedule) -> None:
        self.job = job
        self.engine = job.engine
        self.schedule = schedule
        #: Chronological record of every fault actually delivered.
        self.injected: list[dict] = []
        self._crash: dict[int, float] = {}
        self._fs_state: list[list] = []   # [spec, remaining_count]
        self._net: list[list] = []        # [spec, already_logged]
        self._timer_specs = []
        for spec in schedule:
            if spec.kind == "rank_crash":
                prev = self._crash.get(spec.rank)
                if prev is None or spec.time < prev:
                    self._crash[spec.rank] = spec.time
            elif spec.kind in FS_KINDS:
                self._fs_state.append([spec, spec.count])
            elif spec.kind in NET_KINDS:
                self._net.append([spec, False])
            else:  # fs_slow / buffer_loss / bit_rot / replica_corrupt
                self._timer_specs.append(spec)
        self.has_rank_faults = bool(self._crash)
        self.has_fs_faults = bool(self._fs_state)
        self.has_net_faults = bool(self._net)

    # -- bookkeeping ---------------------------------------------------------
    def log(self, kind: str, **detail: Any) -> None:
        """Record one delivered fault (deterministic, comparable)."""
        self.injected.append({"kind": kind, "time": self.engine.now, **detail})
        tr = _trace.tracer
        if tr is not None:
            # Faults (including writer failovers) surface as instant
            # events on the trace timeline, annotated with the same
            # detail dict the fault report carries.
            tr.instant(kind, "fault", self.engine.now,
                       rank=detail.get("rank", detail.get("adopter", -1)),
                       args={k: v for k, v in detail.items()
                             if isinstance(v, (int, float, str, bool))})

    def report(self) -> dict:
        """Summary of what was actually injected (for tests and benches)."""
        counts: dict[str, int] = {}
        for entry in self.injected:
            counts[entry["kind"]] = counts.get(entry["kind"], 0) + 1
        return {
            "scheduled": len(self.schedule),
            "injected": len(self.injected),
            "by_kind": counts,
            "log": list(self.injected),
        }

    # -- rank-crash oracle ---------------------------------------------------
    def crash_time(self, rank: int) -> Optional[float]:
        """Simulated time at which ``rank`` dies, or ``None``."""
        return self._crash.get(rank)

    def dead_at(self, rank: int, now: float) -> bool:
        """Whether ``rank`` is dead at simulated time ``now``.

        Every rank evaluates this locally from the shared schedule — a
        perfect, deterministic failure detector (no detection latency).
        """
        t = self._crash.get(rank)
        return t is not None and now >= t

    def dead_ranks(self, now: float) -> tuple[int, ...]:
        """Sorted tuple of all ranks dead at ``now``."""
        return tuple(sorted(r for r, t in self._crash.items() if now >= t))

    # -- storage hook --------------------------------------------------------
    def before_fs_op(self, rank: int, op: str, path: str):
        """Generator run at the head of every FS operation.

        Applies at most one matching armed fault: a stall pauses the
        caller, an error raises a contextual transient/fatal
        :class:`FSError` *before* the operation mutates any state (so a
        retried op re-runs cleanly).
        """
        now = self.engine.now
        for state in self._fs_state:
            spec, remaining = state
            if remaining <= 0 or now < spec.time:
                continue
            if spec.rank is not None and spec.rank != rank:
                continue
            if spec.op is not None and spec.op != op:
                continue
            if spec.path is not None and spec.path != path:
                continue
            state[1] = remaining - 1
            if spec.kind == "fs_stall":
                self.log("fs_stall", rank=rank, op=op, path=path,
                         delay=spec.delay)
                yield self.engine.timeout(spec.delay)
                return
            self.log("fs_error", rank=rank, op=op, path=path,
                     transient=spec.transient)
            raise FSError(
                f"injected {'transient' if spec.transient else 'fatal'} "
                f"{op} error on {path!r}",
                op=op, path=path, time=now, transient=spec.transient,
            )
        return
        yield  # pragma: no cover - makes this a generator

    # -- network hook --------------------------------------------------------
    def net_adjust(self, now: float, src: int, dst: int, done: float) -> float:
        """Adjust a fabric transfer's completion time ``done``.

        Degradation stretches the remaining transfer by ``factor`` inside
        the fault window; drops surface as ``delay`` of link-level
        retransmission (BG/P torus links are reliable — packets are never
        lost, only late).
        """
        for state in self._net:
            spec, logged = state
            end = spec.time + spec.duration if spec.duration > 0 else float("inf")
            if not (spec.time <= now < end):
                continue
            if spec.rank is not None and spec.rank not in (src, dst):
                continue
            if spec.kind == "net_degrade":
                done = now + (done - now) * spec.factor
            else:  # net_drop
                done += spec.delay
            if not logged:
                state[1] = True
                self.log(spec.kind, src=src, dst=dst, factor=spec.factor,
                         delay=spec.delay)
        return done

    # -- staging / fs-slow timers --------------------------------------------
    def arm_timers(self) -> None:
        """Schedule absolute-time faults as engine callbacks.

        Targets (the staging service, the FS instance) are looked up at
        *fire* time, so attachment order relative to ``attach_storage`` /
        ``attach_staging`` does not matter.
        """
        eng = self.engine
        for spec in self._timer_specs:
            delay = max(0.0, spec.time - eng.now)
            eng.timeout(delay).add_callback(
                lambda _ev, spec=spec: self._fire_timer(spec))

    def _fire_timer(self, spec) -> None:
        if spec.kind == "fs_slow":
            fs = self.job.services.get("fs")
            if fs is None:
                return
            fs.server_service_factor = fs.server_service_factor * spec.factor
            self.log("fs_slow", factor=spec.factor, duration=spec.duration)
            if spec.duration > 0:
                self.engine.timeout(spec.duration).add_callback(
                    lambda _ev, fs=fs, f=spec.factor: setattr(
                        fs, "server_service_factor",
                        fs.server_service_factor / f))
            return
        svc = self.job.services.get("staging")
        if svc is None:
            return
        if spec.kind == "buffer_loss":
            buf = svc.buffer_for(spec.rank)
            lost = buf.mark_lost()
            self.log("buffer_loss", rank=spec.rank, packages_lost=lost)
            return
        # bit_rot / replica_corrupt: find the target package in some buffer.
        for buf in svc.buffers:
            if spec.kind == "bit_rot":
                for (step, group), pkg in buf.resident.items():
                    if group == spec.group and (spec.step is None
                                                or step == spec.step):
                        self._corrupt(pkg)
                        self.log("bit_rot", group=group, step=step,
                                 path=pkg.path)
                        return
            else:
                pkg = buf.replicas.get(spec.group)
                if pkg is not None and (spec.step is None
                                        or pkg.step == spec.step):
                    self._corrupt(pkg)
                    self.log("replica_corrupt", group=spec.group,
                             step=pkg.step, path=pkg.path)
                    return

    @staticmethod
    def _corrupt(pkg) -> None:
        """Damage a staged package in place.

        With payload bytes present, flip one byte so the checksum check
        does the detecting; in size-only mode just set the modeled flag.
        The image may be a zero-copy rope sharing segments with worker
        packages and replicas — it is materialized into a private buffer
        before the flip so the damage never leaks into shared segments.
        """
        if pkg.image:
            from ..buffers import as_bytes
            buf = bytearray(as_bytes(pkg.image))
            buf[len(buf) // 2] ^= 0xFF
            pkg.image = bytes(buf)
        pkg.corrupt = True


def attach_faults(job: Any, schedule: Optional[FaultSchedule]) -> Optional[FaultInjector]:
    """Wire a fault schedule into an assembled job; returns the injector.

    ``None`` (or an empty schedule with no specs) still installs the
    injector service so callers can query it, but leaves the storage and
    network hot-path hooks unset — the zero-cost off-switch.
    """
    if schedule is None:
        schedule = FaultSchedule(())
    inj = FaultInjector(job, schedule)
    job.services["faults"] = inj
    if inj.has_fs_faults:
        fs = job.services.get("fs")
        if fs is not None:
            fs.injector = inj
    if inj.has_net_faults:
        job.fabric.injector = inj
    inj.arm_timers()
    return inj


def faults_of(job: Any) -> Optional[FaultInjector]:
    """The job's injector, or ``None`` when faults were never attached."""
    return job.services.get("faults")
