"""Bounded retry with exponential backoff for transient I/O failures.

The helper is deliberately dependency-free: it recognises a retryable
failure by the ``transient`` attribute that :class:`~repro.storage.FSError`
and :class:`~repro.staging.StagingError` carry after this PR, so the
storage and staging layers can use it without import cycles.

Retried operations must be idempotent.  All injected faults fire *before*
the wrapped operation mutates simulator state (see
:meth:`~repro.faults.injector.FaultInjector.before_fs_op`), so re-running
the whole generator is safe.
"""

from __future__ import annotations

from .. import trace as _trace

__all__ = ["retry_fs", "DEFAULT_RETRIES", "DEFAULT_BACKOFF"]

DEFAULT_RETRIES = 4
DEFAULT_BACKOFF = 0.05


def retry_fs(engine, attempt, retries: int = DEFAULT_RETRIES,
             backoff: float = DEFAULT_BACKOFF):
    """Run ``attempt()`` (a generator factory), retrying transient errors.

    Re-invokes ``attempt`` up to ``retries`` extra times, sleeping
    ``backoff * 2**n`` simulated seconds before retry ``n``.  An error
    without a truthy ``transient`` attribute — or one past the retry
    budget — propagates unchanged.  Returns the attempt's return value.
    """
    tries = 0
    while True:
        try:
            return (yield from attempt())
        except RuntimeError as exc:
            if not getattr(exc, "transient", False) or tries >= retries:
                raise
            tr = _trace.tracer
            if tr is not None:
                tr.instant("retry", "fault", engine.now,
                           rank=getattr(exc, "rank", -1),
                           args={"error": type(exc).__name__,
                                 "detail": str(exc), "attempt": tries + 1,
                                 "backoff": backoff * (2 ** tries)})
            yield engine.timeout(backoff * (2 ** tries))
            tries += 1
