"""Typed failure surfaced by the resilient restart path.

The recovery contract (DESIGN.md §10) allows exactly two outcomes of a
restart attempt: bit-identical field data, or this exception.  Anything
else — in particular a restore that silently returns wrong or partial
bytes — is a bug the strategy×fault test matrix exists to catch.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["UnrecoverableCheckpointError"]


class UnrecoverableCheckpointError(RuntimeError):
    """No checkpoint generation could be restored consistently.

    Raised by validation (size/checksum mismatch on a specific generation)
    and by :meth:`~repro.ckpt.CheckpointStrategy.restore_resilient` once
    every candidate generation has been rejected by some rank.  Carries
    context so tests and callers can tell *what* was unrecoverable.
    """

    def __init__(self, message: str, *, step: Optional[int] = None,
                 path: Optional[str] = None,
                 rank: Optional[int] = None) -> None:
        super().__init__(message)
        self.step = step
        self.path = path
        self.rank = rank
