"""Resilience campaigns: faulted checkpoint runs followed by restarts.

Builds on :func:`~repro.experiments.runner.run_checkpoint_steps`:

- :func:`run_resilient_campaign` runs ``n_steps`` coordinated checkpoint
  steps under a :class:`~repro.faults.FaultSchedule`, then (on the same
  job, after all background drains settle) a coordinated resilient restore
  (:meth:`~repro.ckpt.CheckpointStrategy.restore_resilient`) that agrees
  on the newest generation every rank can read back intact.
- :func:`resilience_sweep` measures checkpoint overhead as a function of
  the injected fault rate, with schedules drawn deterministically from a
  root seed via :meth:`~repro.faults.FaultSchedule.generate`.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..ckpt import CheckpointStrategy
from ..faults import FaultConfig, FaultSchedule, faults_of
from ..sim import StreamRegistry
from ..topology import MachineConfig, intrepid
from .runner import CheckpointRun, DataBuilder, _data_fn, run_checkpoint_steps

__all__ = ["ResilientCampaign", "run_resilient_campaign", "resilience_sweep"]


class ResilientCampaign:
    """Outcome of one faulted checkpoint campaign plus its restart."""

    def __init__(self, run: CheckpointRun,
                 restored: Optional[dict[int, tuple]]) -> None:
        self.run = run
        #: ``{rank: (step, fields)}`` from the resilient restore, or ``None``
        #: when the campaign was run with ``restore=False``.
        self.restored = restored

    @property
    def results(self) -> list:
        """Per-step :class:`~repro.ckpt.CheckpointResult` objects."""
        return self.run.results

    @property
    def injector(self):
        """The job's :class:`~repro.faults.FaultInjector`."""
        return faults_of(self.run.job)

    @property
    def fault_report(self) -> dict:
        """Scheduled/injected fault accounting (see ``FaultInjector.report``)."""
        return self.injector.report()

    @property
    def restored_step(self) -> Optional[int]:
        """The generation the ranks agreed to restore (all ranks agree)."""
        if not self.restored:
            return None
        return next(iter(self.restored.values()))[0]


def _restore_main(ctx, strategy: CheckpointStrategy, data_fn, steps, basedir):
    template = data_fn(ctx.rank)
    if hasattr(template, "template"):
        # Evolving workloads: restore only needs the field layout.
        template = template.template()
    yield from ctx.comm.barrier()  # coordinated restart start
    step, fields = yield from strategy.restore_resilient(
        ctx, template, steps, basedir=basedir)
    return step, fields


def run_resilient_campaign(strategy: CheckpointStrategy, n_ranks: int,
                           data: DataBuilder, n_steps: int = 2,
                           faults: Optional[FaultSchedule] = None,
                           config: Optional[MachineConfig] = None,
                           seed: Optional[int] = None,
                           basedir: str = "/ckpt",
                           fs_type: str = "gpfs",
                           gap_seconds: float = 0.0,
                           barrier_each_step: bool = True,
                           coalesce: str = "auto",
                           restore: bool = True) -> ResilientCampaign:
    """Checkpoint ``n_steps`` generations under faults, then restart.

    The restore wave is spawned on the *same* job after the checkpoint
    wave (and every background drain) has completed, trying generations
    newest first; it returns ``(step, fields)`` per rank or raises
    :class:`~repro.faults.UnrecoverableCheckpointError` when no generation
    survives — never a silently corrupt restore.  All ranks participate in
    the restart (a real restart replaces crashed ranks).
    """
    run = run_checkpoint_steps(
        strategy, n_ranks, data, n_steps, config=config, seed=seed,
        basedir=basedir, fs_type=fs_type, gap_seconds=gap_seconds,
        barrier_each_step=barrier_each_step, coalesce=coalesce,
        faults=faults,
    )
    restored = None
    if restore:
        steps_newest_first = list(range(n_steps - 1, -1, -1))
        run.job.spawn(_restore_main, strategy, _data_fn(data),
                      steps_newest_first, basedir)
        restored = run.job.run()
    return ResilientCampaign(run, restored)


def resilience_sweep(strategy: CheckpointStrategy, n_ranks: int,
                     data: DataBuilder,
                     fault_rates: Sequence[float],
                     n_steps: int = 2,
                     config: Optional[MachineConfig] = None,
                     seed: Optional[int] = None,
                     fs_type: str = "gpfs",
                     gap_seconds: float = 0.0,
                     horizon: float = 10.0) -> list[dict]:
    """Checkpoint overhead vs. injected transient-fault rate.

    ``fault_rates`` are expected transient FS error counts per campaign
    (plus half as many stalls); each point's schedule is drawn from a
    deterministic per-point seed, so the sweep is bit-reproducible from
    the root seed.  Rate ``0.0`` produces an empty schedule and must cost
    nothing (the zero-cost off-switch the benches assert).
    """
    config = config if config is not None else intrepid()
    root_seed = config.seed if seed is None else seed
    rows = []
    for i, rate in enumerate(fault_rates):
        cfg = FaultConfig(fs_errors=rate, fs_stalls=rate / 2.0,
                          horizon=horizon)
        schedule = FaultSchedule.generate(
            StreamRegistry(root_seed + 7919 * i), n_ranks, cfg)
        run = run_checkpoint_steps(
            strategy, n_ranks, data, n_steps, config=config, seed=seed,
            fs_type=fs_type, gap_seconds=gap_seconds, faults=schedule,
        )
        inj = faults_of(run.job)
        report = inj.report()
        result = run.results[-1]
        rows.append({
            "rate": float(rate),
            "scheduled": report["scheduled"],
            "injected": report["injected"],
            "overall_time": result.overall_time,
            "blocking_time": result.blocking_time,
            "write_bandwidth": result.write_bandwidth,
        })
    base = rows[0]["overall_time"] if rows else 0.0
    for row in rows:
        row["overhead"] = (row["overall_time"] / base) if base > 0 else 1.0
    return rows
