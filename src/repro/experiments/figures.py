"""Per-figure data series for every table and figure in the evaluation.

Each ``figN_*`` function regenerates the data behind one of the paper's
plots on the simulated machine, at the paper's processor counts and problem
sizes by default.  Runs are cached per ``(approach, np, seed)`` so Figs. 5,
6, and 7 (which the paper derives from the same measurement campaign) share
one set of simulations, as do Table I and the speedup analysis.

The five plotted configurations (legend of Figs. 5-7):

====================  =====================================================
``1pfpp``             one POSIX file per processor
``coio_nf1``          coIO, nf = 1 (single shared file)
``coio_64``           coIO, np:nf = 64:1 (split collective, 64 ranks/file)
``rbio_nf1``          rbIO, np:ng = 64:1, nf = 1
``rbio_ng``           rbIO, np:ng = 64:1, nf = ng
====================  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional

import numpy as np

from ..ckpt import (
    BurstBufferIO,
    CheckpointResult,
    CollectiveIO,
    OneFilePerProcess,
    ReducedBlockingIO,
)
from ..model import SpeedupModel, blocked_processor_seconds, production_improvement
from ..sim import IntervalRecorder
from ..staging import StagingConfig, staging_of
from ..topology import MachineConfig, intrepid
from .configs import PAPER_SIZES, TCOMP_PER_STEP, paper_problem, scaled_problem
from .parallel import cache_key, run_sweep, sweep_cache
from .runner import run_checkpoint_step, run_checkpoint_steps


__all__ = [
    "APPROACHES",
    "APPROACH_LABELS",
    "PAPER_NP",
    "RunSummary",
    "get_run",
    "prefetch_runs",
    "clear_cache",
    "strategy_for",
    "problem_for",
    "fig5_write_bandwidth",
    "fig6_overall_time",
    "fig7_checkpoint_ratio",
    "fig8_file_sweep",
    "fig9_distribution_1pfpp",
    "fig10_distribution_coio",
    "fig11_distribution_rbio",
    "fig12_write_activity",
    "table1_perceived",
    "eq1_production_improvement",
    "eq2_7_speedup",
    "ext_staging_run",
    "ext_staging_drain_sweep",
    "ext_staging_capacity_sweep",
]

#: The paper's three weak-scaling processor counts.
PAPER_NP = (16384, 32768, 65536)


def _problem(n_ranks: int):
    """Paper problem when available, weak-scaled equivalent otherwise."""
    return paper_problem(n_ranks) if n_ranks in PAPER_SIZES else scaled_problem(n_ranks)

#: Strategy factories for the five plotted configurations.
APPROACHES: dict[str, Callable] = {
    "1pfpp": lambda: OneFilePerProcess(),
    "coio_nf1": lambda: CollectiveIO(ranks_per_file=None),
    "coio_64": lambda: CollectiveIO(ranks_per_file=64),
    "rbio_nf1": lambda: ReducedBlockingIO(workers_per_writer=64, single_file=True),
    "rbio_ng": lambda: ReducedBlockingIO(workers_per_writer=64),
}

APPROACH_LABELS = {
    "1pfpp": "1PFPP",
    "coio_nf1": "coIO, nf=1",
    "coio_64": "coIO, np:nf=64:1",
    "rbio_nf1": "rbIO, np:ng=64:1, nf=1",
    "rbio_ng": "rbIO, np:ng=64:1, nf=ng",
    # Extension beyond the paper (not part of the default figure sweeps):
    "bbio": "bbIO, np:ng=64:1, staged",
}


@dataclass
class RunSummary:
    """Lightweight cacheable extract of one checkpoint experiment."""

    result: CheckpointResult
    write_intervals: IntervalRecorder
    fs_stats: dict


_CACHE: dict[tuple, RunSummary] = {}


def clear_cache() -> None:
    """Drop all cached runs (tests use this for isolation)."""
    _CACHE.clear()


def _strategy_for(key: str, n_ranks: int):
    if key in APPROACHES:
        return APPROACHES[key]()
    if key == "bbio":
        # Burst-buffer staged commit (extension; see repro.staging).
        return BurstBufferIO(workers_per_writer=64)
    if key.startswith("rbio_nf"):
        # 'rbio_nfNNN' -> nf=ng=NNN writer files (Fig. 8 sweep points).
        nf = int(key[7:])
        return ReducedBlockingIO(workers_per_writer=max(2, n_ranks // nf))
    raise ValueError(f"unknown approach key {key!r}")


def strategy_for(key: str, n_ranks: int, delta: str = "off",
                 tam: str = "off"):
    """Build the checkpoint strategy an approach key names (public hook).

    Accepts the five figure configurations, ``bbio``, and the Fig. 8
    ``rbio_nfNNN`` sweep keys; raises ``ValueError`` for anything else.
    The campaign compiler (:mod:`repro.campaign`) validates and expands
    specs through this same mapping so campaign runs are point-for-point
    identical to the figure sweeps.

    ``delta`` enables incremental (content-defined-chunking) writes on
    the returned strategy — ``"off"`` keeps the paper-fidelity full
    write; see :meth:`repro.ckpt.CheckpointStrategy.configure_delta`.
    ``tam`` enables two-level intra-node request aggregation — ranks
    coalesce through node leaders before any inter-node exchange; see
    :meth:`repro.ckpt.CheckpointStrategy.configure_tam`.
    """
    strategy = _strategy_for(key, n_ranks)
    if delta != "off":
        strategy.configure_delta(delta)
    if tam != "off":
        strategy.configure_tam(tam)
    return strategy


def problem_for(n_ranks: int):
    """The paper problem for a paper count, weak-scaled otherwise (hook)."""
    return _problem(n_ranks)


def _compute_summary(point: tuple) -> RunSummary:
    """One sweep point: run the experiment, extract the cacheable summary.

    Module-level (not a closure) so :func:`~repro.experiments.run_sweep`
    can ship points to worker processes.
    """
    key, n_ranks, config, seed = point
    strategy = _strategy_for(key, n_ranks)
    data = _problem(n_ranks).data()
    run = run_checkpoint_step(strategy, n_ranks, data, config=config, seed=seed)
    return RunSummary(
        result=run.result,
        write_intervals=run.profiler.write_intervals(),
        fs_stats=run.fs.stats(),
    )


def _disk_key(key: str, n_ranks: int, config: MachineConfig,
              seed: Optional[int]) -> str:
    return cache_key("get_run", key, n_ranks, seed, config)


def get_run(key: str, n_ranks: int, config: Optional[MachineConfig] = None,
            seed: Optional[int] = None) -> RunSummary:
    """Run (or fetch from cache) one checkpoint step for an approach.

    Two cache layers: the in-process ``_CACHE`` (shares one measurement
    campaign across Figs. 5-7 and Table I within a run) and, when
    ``REPRO_BENCH_CACHE`` is set, a disk cache that persists summaries
    across benchmark invocations (see :mod:`repro.experiments.parallel`).
    """
    config = config if config is not None else intrepid()
    mem_key = (key, n_ranks, seed, config)
    hit = _CACHE.get(mem_key)
    if hit is not None:
        return hit
    disk = sweep_cache()
    if disk is not None:
        summary = disk.get(_disk_key(key, n_ranks, config, seed))
        if summary is not None:
            _CACHE[mem_key] = summary
            return summary
    summary = _compute_summary((key, n_ranks, config, seed))
    if disk is not None:
        disk.put(_disk_key(key, n_ranks, config, seed), summary)
    _CACHE[mem_key] = summary
    return summary


def prefetch_runs(points: Iterable[tuple[str, int]],
                  config: Optional[MachineConfig] = None,
                  seed: Optional[int] = None,
                  n_workers: Optional[int] = None) -> None:
    """Compute missing ``(approach, np)`` runs, in parallel when possible.

    Fills the same caches :func:`get_run` reads, so a benchmark can fan a
    whole sweep grid out across worker processes up front and then build
    its figures from warm cache hits.  Points already cached (memory or
    disk) are skipped.
    """
    config = config if config is not None else intrepid()
    todo = []
    seen = set()
    disk = sweep_cache()
    for key, n_ranks in points:
        mem_key = (key, n_ranks, seed, config)
        if mem_key in seen or mem_key in _CACHE:
            continue
        seen.add(mem_key)
        if disk is not None:
            summary = disk.get(_disk_key(key, n_ranks, config, seed))
            if summary is not None:
                _CACHE[mem_key] = summary
                continue
        todo.append((key, n_ranks, config, seed))
    if not todo:
        return
    for point, summary in zip(todo, run_sweep(_compute_summary, todo,
                                              n_workers=n_workers)):
        key, n_ranks, config, seed = point
        if disk is not None:
            disk.put(_disk_key(key, n_ranks, config, seed), summary)
        _CACHE[(key, n_ranks, seed, config)] = summary


# ---------------------------------------------------------------------------
# Figures 5-7: the weak-scaling comparison
# ---------------------------------------------------------------------------

def fig5_write_bandwidth(sizes: Iterable[int] = PAPER_NP,
                         approaches: Iterable[str] = tuple(APPROACHES),
                         config: Optional[MachineConfig] = None,
                         ) -> dict[str, dict[int, float]]:
    """Fig. 5: write bandwidth (GB/s) per approach per processor count."""
    out: dict[str, dict[int, float]] = {}
    for key in approaches:
        out[key] = {}
        for n in sizes:
            res = get_run(key, n, config).result
            out[key][n] = res.write_bandwidth / 1e9
    return out


def fig6_overall_time(sizes: Iterable[int] = PAPER_NP,
                      approaches: Iterable[str] = tuple(APPROACHES),
                      config: Optional[MachineConfig] = None,
                      ) -> dict[str, dict[int, float]]:
    """Fig. 6: overall seconds per checkpoint step (log-scale plot)."""
    out: dict[str, dict[int, float]] = {}
    for key in approaches:
        out[key] = {}
        for n in sizes:
            res = get_run(key, n, config).result
            out[key][n] = res.overall_time
    return out


def fig7_checkpoint_ratio(sizes: Iterable[int] = PAPER_NP,
                          approaches: Iterable[str] = tuple(APPROACHES),
                          config: Optional[MachineConfig] = None,
                          t_comp: float = TCOMP_PER_STEP,
                          ) -> dict[str, dict[int, float]]:
    """Fig. 7: T(checkpoint)/T(computation-step) per approach and np.

    Uses application-*blocking* checkpoint time (see DESIGN.md §5): for
    rbIO the dedicated writers overlap subsequent computation, so the
    numerator is the workers' blocking window — the reason the rbIO curve
    sits orders of magnitude below the others and stays flat.
    """
    out: dict[str, dict[int, float]] = {}
    for key in approaches:
        out[key] = {}
        for n in sizes:
            res = get_run(key, n, config).result
            out[key][n] = res.blocking_time / t_comp
    return out


# ---------------------------------------------------------------------------
# Figure 8: rbIO file-count sweep
# ---------------------------------------------------------------------------

def fig8_file_sweep(sizes: Iterable[int] = PAPER_NP,
                    n_files: Iterable[int] = (256, 512, 1024, 2048, 4096),
                    config: Optional[MachineConfig] = None,
                    ) -> dict[int, dict[int, float]]:
    """Fig. 8: rbIO (nf = ng) bandwidth (GB/s) vs number of files per np."""
    out: dict[int, dict[int, float]] = {}
    for n in sizes:
        out[n] = {}
        for nf in n_files:
            if n // nf < 2:
                continue  # need at least one worker per writer
            res = get_run(f"rbio_nf{nf}", n, config).result
            out[n][nf] = res.write_bandwidth / 1e9
    return out


# ---------------------------------------------------------------------------
# Figures 9-11: per-rank I/O time distributions
# ---------------------------------------------------------------------------

def fig9_distribution_1pfpp(n_ranks: int = 16384,
                            config: Optional[MachineConfig] = None,
                            ) -> tuple[np.ndarray, np.ndarray]:
    """Fig. 9: per-rank I/O time scatter for 1PFPP at 16,384 ranks."""
    res = get_run("1pfpp", n_ranks, config).result
    return res.ranks.copy(), (res.t_complete - res.t_start).copy()


def fig10_distribution_coio(n_ranks: int = 65536,
                            config: Optional[MachineConfig] = None,
                            ) -> tuple[np.ndarray, np.ndarray]:
    """Fig. 10: per-rank I/O time scatter for coIO 64:1 at 65,536 ranks."""
    res = get_run("coio_64", n_ranks, config).result
    return res.ranks.copy(), (res.t_complete - res.t_start).copy()


def fig11_distribution_rbio(n_ranks: int = 65536,
                            config: Optional[MachineConfig] = None,
                            ) -> dict:
    """Fig. 11: rbIO per-rank times — the two 'lines' (writers, workers)."""
    res = get_run("rbio_ng", n_ranks, config).result
    io_times = res.t_complete - res.t_start
    writer_set = set(res.writer_ranks)
    writers = np.array([r in writer_set for r in res.ranks])
    return {
        "ranks": res.ranks.copy(),
        "io_time": io_times,
        "writer_mask": writers,
        "writer_times": io_times[writers],
        "worker_times": io_times[~writers],
    }


# ---------------------------------------------------------------------------
# Figure 12: Darshan write activity
# ---------------------------------------------------------------------------

def fig12_write_activity(n_ranks: int = 32768, bin_width: float = 0.25,
                         config: Optional[MachineConfig] = None) -> dict:
    """Fig. 12: concurrent-write-activity timelines, rbIO vs coIO at 32K."""
    out = {}
    for key in ("rbio_ng", "coio_64"):
        run = get_run(key, n_ranks, config)
        starts, counts = run.write_intervals.activity(bin_width)
        out[key] = {"bin_starts": starts, "active_writers": counts,
                    "n_write_ops": len(run.write_intervals)}
    return out


# ---------------------------------------------------------------------------
# Table I and the analytic models
# ---------------------------------------------------------------------------

def table1_perceived(sizes: Iterable[int] = PAPER_NP,
                     config: Optional[MachineConfig] = None) -> list[dict]:
    """Table I: perceived rbIO write performance per processor count.

    Reports the max worker Isend window both in microseconds and in CPU
    cycles (at the configured clock), plus the perceived bandwidth in
    TB/s.  (The paper's cycles and TB/s columns are mutually inconsistent
    by ~13x; ours are self-consistent — see EXPERIMENTS.md.)
    """
    config = config if config is not None else intrepid()
    rows = []
    for n in sizes:
        res = get_run("rbio_ng", n, config).result
        t = res.perceived_time
        rows.append({
            "np": n,
            "time_us": t * 1e6,
            "time_cycles": t * config.cpu_hz,
            "perceived_tbps": res.perceived_bandwidth / 1e12,
        })
    return rows


def eq1_production_improvement(n_ranks: int = 16384, nc: int = 20,
                               t_comp: float = TCOMP_PER_STEP,
                               config: Optional[MachineConfig] = None) -> dict:
    """Eq. 1: end-to-end production improvement of rbIO over 1PFPP.

    Two readings of the rbIO checkpoint time are reported:

    - ``improvement_commit`` uses the writers' full commit time as Tc (the
      slowest-processor wall clock the paper plots in Fig. 6) — this is the
      paper-comparable figure, ~25x at nc = 20;
    - ``improvement_blocking`` uses the application-*blocking* time
      (microsecond worker Isends), the figure that matters once writer
      drain is fully overlapped with computation — a strict upper bound.
    """
    old = get_run("1pfpp", n_ranks, config).result
    new = get_run("rbio_ng", n_ranks, config).result
    improvement_blocking = production_improvement(
        old.blocking_time, new.blocking_time, t_comp, nc
    )
    improvement_commit = production_improvement(
        old.overall_time, new.overall_time, t_comp, nc
    )
    return {
        "np": n_ranks,
        "nc": nc,
        "ratio_1pfpp": old.overall_time / t_comp,
        "ratio_rbio_commit": new.overall_time / t_comp,
        "ratio_rbio_blocking": new.blocking_time / t_comp,
        "improvement_commit": improvement_commit,
        "improvement_blocking": improvement_blocking,
        # Backwards-compatible aliases.
        "ratio_rbio": new.blocking_time / t_comp,
        "improvement": improvement_commit,
    }


def eq2_7_speedup(n_ranks: int = 65536,
                  config: Optional[MachineConfig] = None) -> dict:
    """Eqs. 2-7: model vs simulator for rbIO-over-coIO blocked time."""
    coio = get_run("coio_64", n_ranks, config).result
    rbio = get_run("rbio_ng", n_ranks, config).result
    model = SpeedupModel.from_results(coio, rbio, lam=0.0)
    s = _problem(n_ranks).file_bytes
    measured = (
        blocked_processor_seconds(coio) / blocked_processor_seconds(rbio)
    )
    out = model.describe()
    out.update({
        "t_coio_model": model.t_coio(s),
        "t_rbio_model": model.t_rbio(s),
        "t_coio_measured": blocked_processor_seconds(coio),
        "t_rbio_measured": blocked_processor_seconds(rbio),
        "speedup_measured": measured,
    })
    return out


# ---------------------------------------------------------------------------
# Extension: bbIO staging sweeps (beyond the paper; see DESIGN.md §8)
# ---------------------------------------------------------------------------

def _staging_step_bytes(n_ranks: int, workers_per_writer: int,
                        config: MachineConfig) -> int:
    """Checkpoint bytes one ION-attached buffer ingests per step."""
    data = _problem(n_ranks).data()
    per_group = data.header_bytes + workers_per_writer * data.total_bytes
    ranks_per_pset = config.pset_map(n_ranks).ranks_per_pset()
    groups_per_pset = max(1, min(n_ranks, ranks_per_pset) // workers_per_writer)
    return per_group * groups_per_pset


def ext_staging_run(n_ranks: int = 512, n_steps: int = 4,
                    workers_per_writer: int = 64,
                    gap_seconds: float = 1.0,
                    staging: Optional[StagingConfig] = None,
                    max_outstanding: Optional[int] = 1,
                    config: Optional[MachineConfig] = None,
                    seed: Optional[int] = None) -> dict:
    """Run a multi-step bbIO campaign; return blocking + staging metrics.

    ``gap_seconds`` of computation separate the checkpoint bursts (this is
    what the background drain overlaps); ``max_outstanding=1`` makes
    buffer backpressure visible at the workers, mirroring the rbIO λ
    measurement of ``bench_ext_backpressure``.  No per-step barriers: each
    worker advances at its own pace, so a stalled writer shows up as
    worker blocking rather than hiding in a barrier.
    """
    config = config if config is not None else intrepid()
    strategy = BurstBufferIO(workers_per_writer=workers_per_writer,
                             max_outstanding=max_outstanding,
                             staging=staging)
    data = _problem(n_ranks).data()
    run = run_checkpoint_steps(strategy, n_ranks, data, n_steps=n_steps,
                               config=config, seed=seed,
                               gap_seconds=gap_seconds,
                               barrier_each_step=False)
    svc = staging_of(run.job)
    stats = svc.stats()
    per_step = [r.blocking_time for r in run.results]
    # The first step never sees backpressure (empty buffers, no
    # outstanding packages) — steady state is steps 1..n.
    steady = per_step[1:] if len(per_step) > 1 else per_step
    return {
        "n_ranks": n_ranks,
        "n_steps": n_steps,
        "per_step_blocking": per_step,
        "blocking_time": max(steady),
        "stalls": stats["stalls"],
        "stall_seconds": stats["stall_seconds"],
        "peak_used": stats["peak_used"],
        "packages_drained": stats["drain"]["packages_drained"],
        "bytes_drained": stats["drain"]["bytes_drained"],
        "last_drain_end": stats["drain"]["last_drain_end"],
        "results": run.results,
    }


def ext_staging_drain_sweep(drain_bandwidths: Iterable[Optional[float]],
                            n_ranks: int = 512, n_steps: int = 4,
                            workers_per_writer: int = 64,
                            gap_seconds: float = 1.0,
                            capacity_steps: float = 1.5,
                            config: Optional[MachineConfig] = None,
                            seed: Optional[int] = None
                            ) -> dict[Optional[float], dict]:
    """Worker blocking vs drain bandwidth (the staging backpressure curve).

    ``drain_bandwidths`` are per-writer drain rates (``None`` = as fast as
    the PFS accepts).  Buffer capacity is sized to ``capacity_steps``
    checkpoint steps, so once ``drain_bandwidth * gap_seconds`` falls
    below the per-writer checkpoint volume the buffer fills and worker
    blocking rises — the staging analogue of the paper's λ.
    ``high_watermark=None`` makes the cap hard (no emergency drain), so
    the sweep isolates the bandwidth knob.
    """
    config = config if config is not None else intrepid()
    step_bytes = _staging_step_bytes(n_ranks, workers_per_writer, config)
    out: dict[Optional[float], dict] = {}
    for bw in drain_bandwidths:
        staging = StagingConfig(
            capacity_bytes=max(1, int(capacity_steps * step_bytes)),
            drain_bandwidth=bw,
            high_watermark=None,
        )
        out[bw] = ext_staging_run(
            n_ranks=n_ranks, n_steps=n_steps,
            workers_per_writer=workers_per_writer,
            gap_seconds=gap_seconds, staging=staging,
            config=config, seed=seed,
        )
    return out


def ext_staging_capacity_sweep(capacity_steps: Iterable[float],
                               n_ranks: int = 512, n_steps: int = 4,
                               workers_per_writer: int = 64,
                               gap_seconds: float = 1.0,
                               drain_bandwidth: Optional[float] = None,
                               config: Optional[MachineConfig] = None,
                               seed: Optional[int] = None
                               ) -> dict[float, dict]:
    """Worker blocking vs buffer capacity (in checkpoint-steps of bytes).

    With a fixed, deliberately under-provisioned ``drain_bandwidth``
    (per-writer), a larger buffer absorbs more checkpoint steps before
    writers hit :meth:`~repro.staging.buffer.BurstBuffer.reserve`
    backpressure — capacity buys time, not sustained bandwidth, so for a
    long enough campaign only the drain rate matters.
    """
    config = config if config is not None else intrepid()
    step_bytes = _staging_step_bytes(n_ranks, workers_per_writer, config)
    out: dict[float, dict] = {}
    for steps in capacity_steps:
        staging = StagingConfig(
            capacity_bytes=max(1, int(steps * step_bytes)),
            drain_bandwidth=drain_bandwidth,
            high_watermark=None,
        )
        out[steps] = ext_staging_run(
            n_ranks=n_ranks, n_steps=n_steps,
            workers_per_writer=workers_per_writer,
            gap_seconds=gap_seconds, staging=staging,
            config=config, seed=seed,
        )
    return out
