"""Run coordinated checkpoint steps and collect results.

This is the measurement harness every benchmark uses: build a job on the
simulated machine, attach storage and a profiler, run one (or several)
coordinated checkpoint steps with a given strategy, and return
:class:`~repro.ckpt.CheckpointResult` objects with the paper's metrics.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Union

from ..ckpt import CheckpointData, CheckpointResult, CheckpointStrategy
from ..ckpt.data import EvolvingData
from ..ckpt.result import RankReport
from ..faults import FaultSchedule, attach_faults
from ..mpi import Job
from .. import trace as _trace
from ..profiling import DarshanProfiler, make_profiler
from ..storage import attach_storage
from ..topology import MachineConfig, intrepid

__all__ = ["CheckpointRun", "normalize_gaps", "run_checkpoint_step",
           "run_checkpoint_steps"]

DataBuilder = Union[CheckpointData, EvolvingData,
                    Callable[[int], CheckpointData]]

#: Computation gaps between checkpoint steps: one uniform value, or one
#: value per inter-step interval (``n_steps - 1`` of them).
GapSpec = Union[float, Sequence[float]]


def normalize_gaps(gap_seconds: GapSpec, n_steps: int) -> tuple[float, ...]:
    """Per-step pre-gap tuple of length ``n_steps`` (first entry always 0).

    A scalar means the classic uniform spacing; a sequence gives the gap
    before each step after the first (campaign checkpoint rules compile to
    these).  Entry ``i`` is the computation time a rank spends before
    entering step ``i``.
    """
    if isinstance(gap_seconds, (int, float)):
        gap = float(gap_seconds)
        if gap < 0:
            raise ValueError(f"negative gap_seconds: {gap}")
        return (0.0,) + (gap,) * (n_steps - 1)
    gaps = tuple(float(g) for g in gap_seconds)
    if len(gaps) != n_steps - 1:
        raise ValueError(
            f"need {n_steps - 1} inter-step gaps for {n_steps} steps, "
            f"got {len(gaps)}")
    if any(g < 0 for g in gaps):
        raise ValueError(f"negative inter-step gap in {gaps}")
    return (0.0,) + gaps


class CheckpointRun:
    """Everything produced by a checkpoint experiment run.

    ``profiler`` is ``None`` when profiling was switched off via
    :func:`repro.profiling.configure_profiling` (sweeps that never read
    profiles); figure pipelines always run with it on.
    """

    def __init__(self, job: Job, profiler: Optional[DarshanProfiler],
                 results: list[CheckpointResult]) -> None:
        self.job = job
        self.profiler = profiler
        self.results = results

    @property
    def result(self) -> CheckpointResult:
        """The (last) step's result."""
        return self.results[-1]

    @property
    def fs(self):
        """The job's file system."""
        return self.job.services["fs"]


def _data_fn(data: DataBuilder):
    if isinstance(data, CheckpointData):
        return lambda _rank: data
    if isinstance(data, EvolvingData):
        return data.bind
    return data


def _rank_main(ctx, strategy: CheckpointStrategy, data_fn, steps: list[int],
               basedir: str, gaps: tuple[float, ...], barrier_each_step: bool,
               writer_set: frozenset):
    data = data_fn(ctx.rank)
    # Dedicated I/O ranks (rbIO writers) do not compute between
    # checkpoints — they spend the gap draining their backlog.  The writer
    # set is computed once per run and shared (rebuilding it per rank was
    # O(np^2) at 65K ranks).
    is_writer = ctx.rank in writer_set
    inj = ctx.job.services.get("faults")
    crash_t = inj.crash_time(ctx.rank) if inj is not None else None
    reports = []
    for i, step in enumerate(steps):
        dead = crash_t is not None and ctx.engine.now >= crash_t
        if gaps[i] > 0 and not is_writer and not dead:
            # Computation between checkpoints (nc * Tcomp).
            yield ctx.engine.timeout(gaps[i])
        if i == 0 or barrier_each_step:
            # Coordinated checkpoint start.  Without per-step barriers
            # ranks iterate at their own pace (the solver's nearest-
            # neighbour coupling, not a global barrier, is what loosely
            # synchronizes a real run) — this is the mode that exposes
            # rbIO writer backpressure.  Crashed ranks still enter the
            # barrier: crashes are cooperative at step boundaries, and the
            # barrier is what makes every rank evaluate the failure
            # oracle at the same instant.
            yield from ctx.comm.barrier()
        # Evolving workloads materialize each step's state just before it
        # is checkpointed (successive generations genuinely differ).
        d = data.at_step(step) if hasattr(data, "at_step") else data
        if crash_t is not None and ctx.engine.now >= crash_t:
            # This rank is dead for the rest of the campaign.  It ghosts
            # through any collective setup (communicator splits) so the
            # survivors' collectives complete, but contributes no data.
            yield from strategy.ghost(ctx, d, step, basedir)
            now = ctx.engine.now
            reports.append(RankReport(
                rank=ctx.rank, role="crashed", t_start=now,
                t_blocked_end=now, t_complete=now, bytes_local=0))
            continue
        report = yield from strategy.checkpoint(ctx, d, step, basedir)
        reports.append(report)
    return reports


def _rep_main(ctx, worker_main, members, data, steps: list[int], basedir: str,
              gaps: tuple[float, ...], barrier_each_step: bool):
    """Representative rank: replay a whole symmetric group from one process."""
    return (yield from worker_main(ctx, members, data, steps, basedir,
                                   gaps, barrier_each_step))


def run_checkpoint_steps(strategy: CheckpointStrategy, n_ranks: int,
                         data: DataBuilder, n_steps: int = 1,
                         config: Optional[MachineConfig] = None,
                         seed: Optional[int] = None,
                         basedir: str = "/ckpt",
                         fs_type: str = "gpfs",
                         gap_seconds: GapSpec = 0.0,
                         barrier_each_step: bool = True,
                         coalesce: str = "auto",
                         faults: Optional[FaultSchedule] = None) -> CheckpointRun:
    """Run ``n_steps`` coordinated checkpoint steps; return all results.

    Each step writes into its own ``stepNNNNNN`` directory, as NekCEM does
    (restart files double as visualization dumps).  ``fs_type`` selects the
    storage variant ("gpfs" default, "lustre"/"pvfs" for the comparison
    studies); ``gap_seconds`` inserts computation time between checkpoints
    (nc * Tcomp), during which rbIO writers drain their backlog.  It is a
    scalar (uniform spacing) or a sequence of ``n_steps - 1`` per-interval
    gaps — the form campaign checkpoint rules (every/at in sim or wall
    time) compile down to.

    ``coalesce`` controls symmetry-aware rank coalescing (see
    :mod:`repro.sim.coalesce`): ``"auto"`` (default) accepts the strategy's
    plan when all ranks share one :class:`~repro.ckpt.CheckpointData`
    object, ``"off"`` forces the full SPMD run, ``"require"`` raises if no
    plan is available (used by the exactness tests).  Coalesced runs are
    bit-identical to uncoalesced ones.

    ``faults`` attaches a :class:`~repro.faults.FaultSchedule` to the job
    (see :mod:`repro.faults`).  A non-empty schedule disables coalescing:
    faults break the rank symmetry coalescing relies on, so every rank
    must actually run.
    """
    if n_steps < 1:
        raise ValueError("need at least one step")
    if coalesce not in ("auto", "off", "require"):
        raise ValueError(f"coalesce must be auto/off/require, got {coalesce!r}")
    if coalesce == "require" and faults:
        raise ValueError("coalesce='require' is incompatible with a "
                         "non-empty fault schedule")
    config = config if config is not None else intrepid()
    job = Job(n_ranks, config, seed=seed)
    profiler = make_profiler()
    if _trace.tracer is not None:
        _trace.tracer.cores_per_node = config.cores_per_node
    fs = attach_storage(job, profiler=profiler, fs_type=fs_type)
    attach_faults(job, faults)
    for ctx in job.contexts:
        ctx.profiler = profiler
    steps = list(range(n_steps))
    gaps = normalize_gaps(gap_seconds, n_steps)
    writer_set = frozenset()
    if any(g > 0 for g in gaps) and hasattr(strategy, "writer_ranks"):
        writer_set = frozenset(strategy.writer_ranks(n_ranks))
    plan = None
    if coalesce != "off" and isinstance(data, CheckpointData) and not faults:
        # Per-rank data builders can diverge, so only a single shared
        # CheckpointData object is provably symmetric.  A non-empty fault
        # schedule also disqualifies coalescing (rank-targeted faults).
        plan = strategy.coalesce_plan(n_ranks)
    if coalesce == "require" and plan is None:
        raise ValueError(
            f"coalesce='require' but {strategy.name} offers no plan for "
            f"this configuration"
        )
    if plan is None:
        job.spawn(_rank_main, strategy, _data_fn(data), steps, basedir,
                  gaps, barrier_each_step, writer_set)
    else:
        # Spawn in world-rank order (reps in their group's first-worker
        # slot) so process bootstrap — and with it every same-time event
        # tie — happens in the same order as the uncoalesced run.
        rep_members = plan.rep_members()
        skip = plan.replayed_ranks()
        data_fn = _data_fn(data)
        for r in range(n_ranks):
            if r in skip:
                continue
            if r in rep_members:
                job.spawn(_rep_main, plan.worker_main, rep_members[r], data,
                          steps, basedir, gaps, barrier_each_step,
                          ranks=[r])
            else:
                job.spawn(_rank_main, strategy, data_fn, steps, basedir,
                          gaps, barrier_each_step, writer_set,
                          ranks=[r])
    per_rank = job.run()
    if plan is not None:
        # A representative returns {member: [reports]} for its whole group.
        expanded: dict[int, list] = {}
        for r, value in per_rank.items():
            if r in rep_members:
                expanded.update(value)
            else:
                expanded[r] = value
        per_rank = expanded
    results = []
    for i, step in enumerate(steps):
        reports = {rank: reps[i] for rank, reps in per_rank.items()}
        results.append(
            CheckpointResult(
                strategy.name, reports, params=strategy.describe(),
                fs_stats=fs.stats(),
            )
        )
    return CheckpointRun(job, profiler, results)


def run_checkpoint_step(strategy: CheckpointStrategy, n_ranks: int,
                        data: DataBuilder,
                        config: Optional[MachineConfig] = None,
                        seed: Optional[int] = None,
                        basedir: str = "/ckpt",
                        fs_type: str = "gpfs",
                        coalesce: str = "auto") -> CheckpointRun:
    """Run a single coordinated checkpoint step."""
    return run_checkpoint_steps(strategy, n_ranks, data, 1, config, seed,
                                basedir, fs_type, coalesce=coalesce)


def run_checkpoint_and_restore(strategy: CheckpointStrategy, n_ranks: int,
                               data: DataBuilder,
                               config: Optional[MachineConfig] = None,
                               seed: Optional[int] = None,
                               basedir: str = "/ckpt",
                               fs_type: str = "gpfs") -> dict:
    """One checkpoint step followed by a coordinated restart read.

    Returns the checkpoint :class:`~repro.ckpt.CheckpointResult` plus
    restart timing: the window from the coordinated restore start until
    the slowest rank holds its state again (the restart latency a failure
    recovery pays).
    """
    config = config if config is not None else intrepid()
    job = Job(n_ranks, config, seed=seed)
    profiler = make_profiler()
    if _trace.tracer is not None:
        _trace.tracer.cores_per_node = config.cores_per_node
    fs = attach_storage(job, profiler=profiler, fs_type=fs_type)
    for ctx in job.contexts:
        ctx.profiler = profiler
    data_fn = _data_fn(data)
    restore_windows: dict[int, tuple[float, float]] = {}

    def rank_main(ctx):
        d = data_fn(ctx.rank)
        yield from ctx.comm.barrier()
        report = yield from strategy.checkpoint(ctx, d, 0, basedir)
        yield from ctx.comm.barrier()  # coordinated restart start
        t0 = ctx.engine.now
        yield from strategy.restore(ctx, d, 0, basedir)
        restore_windows[ctx.rank] = (t0, ctx.engine.now)
        return report

    job.spawn(rank_main)
    reports = job.run()
    result = CheckpointResult(strategy.name, reports,
                              params=strategy.describe(), fs_stats=fs.stats())
    t0 = min(a for a, _b in restore_windows.values())
    t1 = max(b for _a, b in restore_windows.values())
    total = sum(data_fn(r).total_bytes for r in range(n_ranks))
    return {
        "checkpoint": result,
        "restore_seconds": t1 - t0,
        "restore_bandwidth": total / (t1 - t0) if t1 > t0 else float("inf"),
        "per_rank_restore": {
            r: b - a for r, (a, b) in restore_windows.items()
        },
    }
