"""Experiment presets: the paper's weak-scaling problem sizes.

Section V-B of the paper runs 3-D cylindrical waveguide simulations with
polynomial order N=15 (4096 grid points per element) at three weak-scaling
sizes:

    (E, P) = (68K, 16K), (137K, 32K), (273K, 65K)
    (n, S) = (275M, 39 GB), (550M, 78 GB), (1.1B, 156 GB) per I/O step.

NekCEM's computation scales nearly perfectly on Intrepid at these sizes, so
the per-step computation time is effectively constant across the sweep;
from the paper's scaling data (0.13 s/step at 131K procs for n/P = 8,530)
the 16.8K-points-per-rank runs here take ~0.26 s/step.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ckpt import CheckpointData

__all__ = [
    "ProblemSize",
    "PAPER_SIZES",
    "TCOMP_PER_STEP",
    "POLY_ORDER",
    "paper_problem",
    "paper_data",
    "scaled_problem",
]

#: Polynomial approximation order used throughout the evaluation.
POLY_ORDER = 15

#: NekCEM computation seconds per time step at the paper's weak-scaling
#: point (~16.8K grid points per rank).
TCOMP_PER_STEP = 0.26


@dataclass(frozen=True)
class ProblemSize:
    """One weak-scaling configuration of the NekCEM waveguide run."""

    n_ranks: int          # P: processors (cores)
    elements: int         # E: spectral elements
    points: int           # n = E * (N+1)^3 grid points
    file_bytes: int       # S: checkpoint bytes per I/O step

    @property
    def points_per_rank(self) -> int:
        """n / P (rounded)."""
        return round(self.points / self.n_ranks)

    @property
    def bytes_per_rank(self) -> int:
        """Average checkpoint bytes contributed per rank."""
        return round(self.file_bytes / self.n_ranks)

    def data(self) -> CheckpointData:
        """Per-rank checkpoint contribution (NekCEM-shaped, size-only)."""
        return CheckpointData.nekcem_like(self.points_per_rank)


def _paper_size(n_ranks: int, elements: int) -> ProblemSize:
    points = elements * (POLY_ORDER + 1) ** 3
    # The paper's reported S works out to ~142 B per grid point, which is
    # what CheckpointData.nekcem_like produces per rank.
    data = CheckpointData.nekcem_like(round(points / n_ranks))
    return ProblemSize(n_ranks, elements, points, data.total_bytes * n_ranks)


#: The paper's three evaluation sizes, keyed by processor count.
PAPER_SIZES: dict[int, ProblemSize] = {
    16384: _paper_size(16384, 68_000),
    32768: _paper_size(32768, 137_000),
    65536: _paper_size(65536, 273_000),
}


def paper_problem(n_ranks: int) -> ProblemSize:
    """The paper's problem for one of its processor counts."""
    try:
        return PAPER_SIZES[n_ranks]
    except KeyError:
        raise ValueError(
            f"no paper size for {n_ranks} ranks; have {sorted(PAPER_SIZES)}"
        ) from None


def paper_data(n_ranks: int) -> CheckpointData:
    """Per-rank checkpoint data for a paper processor count."""
    return paper_problem(n_ranks).data()


def scaled_problem(n_ranks: int) -> ProblemSize:
    """A weak-scaled problem for *any* rank count (tests, small demos).

    Keeps the paper's per-rank load (~16.8K points per rank, ~2.4 MB per
    rank per checkpoint).
    """
    elements = max(1, round(68_000 * n_ranks / 16384))
    return _paper_size(n_ranks, elements)
