"""Parallel, disk-cached sweep execution for the figure benchmarks.

Regenerating the paper's evaluation means sweeping the same checkpoint
experiment over (approach x processor count) grids.  Points are fully
independent — a sweep is embarrassingly parallel — and bit-reproducible
(every run is seeded), so results can be fanned out across worker
processes and memoized on disk across benchmark invocations.

Three knobs, all environment-driven so ``pytest benchmarks/`` needs no
plumbing:

``REPRO_BENCH_PARALLEL``
    Worker-process count for :func:`run_sweep`.  Unset: one worker per
    spare core (``cpu_count - 1``, min 1 — i.e. serial on small boxes).
    ``1`` forces serial (in-process, easiest to debug/profile).

``REPRO_BENCH_CACHE``
    Disk-cache location.  Unset/empty/``0``: caching off.  ``1``: the
    default ``.repro-cache/`` under the current directory.  Anything
    else: used as the cache directory path.

``REPRO_BENCH_CACHE_MAX``
    Cache size bound in bytes (suffixes ``K``/``M``/``G`` accepted, e.g.
    ``512M``).  Unset/empty: unbounded.  When a write pushes the cache
    past the bound, least-recently-used entries are evicted (reads touch
    entry mtimes) until it fits again.

Cache keys hash every input that determines a run's output — approach
key, rank count, seed, the full :class:`~repro.topology.MachineConfig`
repr — plus :data:`CACHE_VERSION`, which must be bumped whenever timing
semantics change anywhere in the simulator (engine, fabric, storage,
strategies).  Entries are pickles, written atomically (tmp + rename) so
concurrent sweep workers — including the campaign sweep service's shard
processes — can share one cache directory; eviction is serialized
through an ``O_EXCL`` lock file so at most one process compacts at a
time, and every reader treats a concurrently-evicted entry as a miss.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Any, Callable, Optional, Sequence

__all__ = [
    "CACHE_VERSION",
    "DiskCache",
    "cache_key",
    "parse_size",
    "point_seed",
    "sweep_cache",
    "default_workers",
    "run_sweep",
]

#: Bump when any change alters simulated timings: cached entries from
#: earlier versions must never be served as current results.
CACHE_VERSION = 1


def cache_key(*parts: Any) -> str:
    """Stable content hash over heterogeneous key parts.

    Parts are rendered with ``repr`` — adequate for the scalars, strings,
    and frozen dataclasses that define a run — and separated unambiguously.
    """
    blob = "\x1f".join(repr(p) for p in (CACHE_VERSION,) + parts)
    return hashlib.sha256(blob.encode()).hexdigest()


def point_seed(base_seed: Optional[int], *fields: Any) -> Optional[int]:
    """Deterministic per-point seed derived from a base seed and the point.

    ``None`` stays ``None`` (the unseeded-run convention); otherwise each
    sweep point gets its own stream, stable across runs and independent of
    execution order or worker assignment.
    """
    if base_seed is None:
        return None
    digest = cache_key("seed", base_seed, *fields)
    return int(digest[:16], 16)


class DiskCache:
    """Pickle-per-entry cache directory; safe for concurrent writers.

    With ``max_bytes`` set the cache is bounded: after each write, if the
    directory exceeds the bound, least-recently-used entries (by mtime;
    reads touch their entry) are unlinked until it fits.  Eviction runs
    under an ``O_EXCL`` lock file so concurrent writer processes never
    compact simultaneously; losers simply skip — the next write retries.
    Readers racing an eviction observe a clean miss and recompute.
    """

    #: A crashed evictor must not wedge the cache: locks older than this
    #: many seconds are broken by the next evictor.
    _LOCK_STALE_SECONDS = 60.0
    #: Orphaned ``*.tmp`` files (a writer killed mid-dump) older than this
    #: are swept during eviction.
    _TMP_STALE_SECONDS = 300.0

    def __init__(self, root: str, max_bytes: Optional[int] = None) -> None:
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.root = Path(root)
        self.max_bytes = max_bytes
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.pkl"

    def get(self, key: str) -> Optional[Any]:
        """Return the cached value, or ``None`` on miss or corrupt entry."""
        path = self._path(key)
        try:
            with path.open("rb") as f:
                value = pickle.load(f)
        except FileNotFoundError:
            return None
        except Exception:
            # A torn write (interrupted run) must read as a miss.
            try:
                path.unlink()
            except OSError:
                pass
            return None
        if self.max_bytes is not None:
            try:
                os.utime(path)  # LRU touch; entry may be evicted mid-read
            except OSError:
                pass
        return value

    def put(self, key: str, value: Any) -> None:
        """Store atomically: a reader sees the old entry or the new one."""
        path = self._path(key)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as f:
                pickle.dump(value, f, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._maybe_evict()

    def size_bytes(self) -> int:
        """Total bytes of all current entries (racy but monotonic enough)."""
        total = 0
        for path in self.root.glob("*.pkl"):
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total

    def _maybe_evict(self) -> None:
        if self.max_bytes is None:
            return
        lock = self.root / ".evict.lock"
        try:
            fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            # Another process is evicting.  Break the lock only if its
            # holder looks dead (mtime far in the past), else skip.
            try:
                age = time.time() - lock.stat().st_mtime
            except OSError:
                return
            if age < self._LOCK_STALE_SECONDS:
                return
            try:
                lock.unlink()
            except OSError:
                return
            try:
                fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except OSError:
                return
        try:
            os.close(fd)
            self._evict_lru()
        finally:
            try:
                lock.unlink()
            except OSError:
                pass

    def _evict_lru(self) -> None:
        """Unlink oldest entries until the cache fits ``max_bytes`` again."""
        now = time.time()
        entries = []
        for path in self.root.iterdir():
            try:
                st = path.stat()
            except OSError:
                continue  # lost a race with another writer/evictor
            if path.suffix == ".tmp":
                if now - st.st_mtime > self._TMP_STALE_SECONDS:
                    try:
                        path.unlink()
                    except OSError:
                        pass
                continue
            if path.suffix == ".pkl":
                entries.append((st.st_mtime, st.st_size, path))
        total = sum(size for _t, size, _p in entries)
        if total <= self.max_bytes:
            return
        entries.sort()  # oldest mtime first
        # Never evict the newest entry: the value just written must be
        # readable even when it alone exceeds the bound.
        for _mtime, size, path in entries[:-1]:
            if total <= self.max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= size


def parse_size(spec: str) -> int:
    """Parse a byte count with an optional ``K``/``M``/``G`` suffix."""
    text = spec.strip().upper()
    scale = {"K": 1024, "M": 1024 ** 2, "G": 1024 ** 3}.get(text[-1:] or "", 1)
    if scale != 1:
        text = text[:-1]
    try:
        value = int(float(text) * scale)
    except ValueError:
        raise ValueError(
            f"bad size {spec!r}: expected bytes with optional K/M/G suffix"
        ) from None
    if value < 1:
        raise ValueError(f"size must be positive, got {spec!r}")
    return value


def sweep_cache() -> Optional[DiskCache]:
    """The env-configured disk cache, or ``None`` when caching is off."""
    spec = os.environ.get("REPRO_BENCH_CACHE", "")
    if spec in ("", "0"):
        return None
    max_spec = os.environ.get("REPRO_BENCH_CACHE_MAX", "")
    max_bytes = parse_size(max_spec) if max_spec else None
    return DiskCache(".repro-cache" if spec == "1" else spec,
                     max_bytes=max_bytes)


def default_workers() -> int:
    """Sweep worker count: ``REPRO_BENCH_PARALLEL`` or one per spare core."""
    spec = os.environ.get("REPRO_BENCH_PARALLEL", "")
    if spec:
        return max(1, int(spec))
    return max(1, (os.cpu_count() or 1) - 1)


def run_sweep(fn: Callable[[Any], Any], points: Sequence[Any],
              n_workers: Optional[int] = None) -> list:
    """Evaluate ``fn`` over independent sweep points; results in order.

    With more than one worker, points run in a ``ProcessPoolExecutor``
    (``fn`` and each point must be picklable — use a module-level
    function).  Serial execution (one worker, or a single point) stays
    in-process, so closures work and tracebacks are direct.
    """
    points = list(points)
    workers = default_workers() if n_workers is None else max(1, n_workers)
    if workers <= 1 or len(points) <= 1:
        return [fn(p) for p in points]
    with ProcessPoolExecutor(max_workers=min(workers, len(points))) as pool:
        return list(pool.map(fn, points))
