"""Parallel, disk-cached sweep execution for the figure benchmarks.

Regenerating the paper's evaluation means sweeping the same checkpoint
experiment over (approach x processor count) grids.  Points are fully
independent — a sweep is embarrassingly parallel — and bit-reproducible
(every run is seeded), so results can be fanned out across worker
processes and memoized on disk across benchmark invocations.

Three knobs, all environment-driven so ``pytest benchmarks/`` needs no
plumbing:

``REPRO_BENCH_PARALLEL``
    Worker-process count for :func:`run_sweep`.  Unset: one worker per
    spare core (``cpu_count - 1``, min 1 — i.e. serial on small boxes).
    ``1`` forces serial (in-process, easiest to debug/profile).

``REPRO_BENCH_CACHE``
    Disk-cache location.  Unset/empty/``0``: caching off.  ``1``: the
    default ``.repro-cache/`` under the current directory.  Anything
    else: used as the cache directory path.

Cache keys hash every input that determines a run's output — approach
key, rank count, seed, the full :class:`~repro.topology.MachineConfig`
repr — plus :data:`CACHE_VERSION`, which must be bumped whenever timing
semantics change anywhere in the simulator (engine, fabric, storage,
strategies).  Entries are pickles, written atomically (tmp + rename) so
concurrent sweep workers can share one cache directory.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Any, Callable, Iterable, Optional, Sequence

__all__ = [
    "CACHE_VERSION",
    "DiskCache",
    "cache_key",
    "point_seed",
    "sweep_cache",
    "default_workers",
    "run_sweep",
]

#: Bump when any change alters simulated timings: cached entries from
#: earlier versions must never be served as current results.
CACHE_VERSION = 1


def cache_key(*parts: Any) -> str:
    """Stable content hash over heterogeneous key parts.

    Parts are rendered with ``repr`` — adequate for the scalars, strings,
    and frozen dataclasses that define a run — and separated unambiguously.
    """
    blob = "\x1f".join(repr(p) for p in (CACHE_VERSION,) + parts)
    return hashlib.sha256(blob.encode()).hexdigest()


def point_seed(base_seed: Optional[int], *fields: Any) -> Optional[int]:
    """Deterministic per-point seed derived from a base seed and the point.

    ``None`` stays ``None`` (the unseeded-run convention); otherwise each
    sweep point gets its own stream, stable across runs and independent of
    execution order or worker assignment.
    """
    if base_seed is None:
        return None
    digest = cache_key("seed", base_seed, *fields)
    return int(digest[:16], 16)


class DiskCache:
    """Pickle-per-entry cache directory; safe for concurrent writers."""

    def __init__(self, root: str) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.pkl"

    def get(self, key: str) -> Optional[Any]:
        """Return the cached value, or ``None`` on miss or corrupt entry."""
        path = self._path(key)
        try:
            with path.open("rb") as f:
                return pickle.load(f)
        except FileNotFoundError:
            return None
        except Exception:
            # A torn write (interrupted run) must read as a miss.
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def put(self, key: str, value: Any) -> None:
        """Store atomically: a reader sees the old entry or the new one."""
        path = self._path(key)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as f:
                pickle.dump(value, f, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise


def sweep_cache() -> Optional[DiskCache]:
    """The env-configured disk cache, or ``None`` when caching is off."""
    spec = os.environ.get("REPRO_BENCH_CACHE", "")
    if spec in ("", "0"):
        return None
    return DiskCache(".repro-cache" if spec == "1" else spec)


def default_workers() -> int:
    """Sweep worker count: ``REPRO_BENCH_PARALLEL`` or one per spare core."""
    spec = os.environ.get("REPRO_BENCH_PARALLEL", "")
    if spec:
        return max(1, int(spec))
    return max(1, (os.cpu_count() or 1) - 1)


def run_sweep(fn: Callable[[Any], Any], points: Sequence[Any],
              n_workers: Optional[int] = None) -> list:
    """Evaluate ``fn`` over independent sweep points; results in order.

    With more than one worker, points run in a ``ProcessPoolExecutor``
    (``fn`` and each point must be picklable — use a module-level
    function).  Serial execution (one worker, or a single point) stays
    in-process, so closures work and tracebacks are direct.
    """
    points = list(points)
    workers = default_workers() if n_workers is None else max(1, n_workers)
    if workers <= 1 or len(points) <= 1:
        return [fn(p) for p in points]
    with ProcessPoolExecutor(max_workers=min(workers, len(points))) as pool:
        return list(pool.map(fn, points))
