"""Global input-file read experiment (paper Section III-B).

NekCEM reads its global ``.rea`` mesh and ``.map`` partition files once at
presetup: rank 0 reads and parses the global data, then distributes it.
The paper reports 7.5 s for E = 136K elements on 32,768 processors and
28 s for E = 546K on 131,072 processors — slow enough to notice but, since
it happens once per run, not the optimization target (writes are).

This harness stages a realistically sized input file in the simulated GPFS,
has rank 0 read and parse it, and broadcasts the mesh data to all ranks.
"""

from __future__ import annotations

from typing import Optional

from ..mpi import Job
from ..storage import attach_storage
from ..topology import MachineConfig, intrepid

__all__ = ["REA_BYTES_PER_ELEMENT", "PARSE_CYCLES_PER_BYTE", "input_read_time"]

#: ASCII .rea size per element: 8 vertices x 3 coordinates x ~17 chars
#: plus boundary-condition lines.
REA_BYTES_PER_ELEMENT = 500

#: Text parsing cost on the 850 MHz PPC450 (float parsing dominated).
PARSE_CYCLES_PER_BYTE = 80.0


def input_read_time(n_ranks: int, elements: int,
                    config: Optional[MachineConfig] = None) -> dict:
    """Measure the presetup read of a global ``.rea`` file.

    Returns timings (seconds of virtual time) for the read, parse, and
    broadcast stages plus the total.
    """
    if elements < 1:
        raise ValueError("need at least one element")
    config = config if config is not None else intrepid()
    nbytes = elements * REA_BYTES_PER_ELEMENT
    job = Job(n_ranks, config)
    fs = attach_storage(job)
    fs.preload_file("/inputs/mesh.rea", nbytes)
    timings: dict[str, float] = {}

    def rank_main(ctx):
        eng = ctx.engine
        t0 = eng.now
        if ctx.rank == 0:
            handle = yield from ctx.fs.open("/inputs/mesh.rea")
            yield from ctx.fs.read(handle, 0, nbytes)
            yield from ctx.fs.close(handle)
            timings["read"] = eng.now - t0
            # Parse the ASCII mesh (vertex coordinates, BCs).
            yield eng.timeout(nbytes * PARSE_CYCLES_PER_BYTE / ctx.config.cpu_hz)
            timings["parse"] = eng.now - t0 - timings["read"]
        t1 = eng.now
        yield from ctx.comm.bcast(value="meshdata", root=0, nbytes=nbytes)
        if ctx.rank == 0:
            timings["bcast"] = eng.now - t1
            timings["total"] = eng.now - t0
        return eng.now

    job.spawn(rank_main)
    job.run()
    timings["n_ranks"] = n_ranks
    timings["elements"] = elements
    timings["file_mb"] = nbytes / 1e6
    return timings
