"""Compile a campaign spec into concrete, runnable, hashable points.

:func:`expand` turns one :class:`~repro.campaign.spec.CampaignSpec` into
an ordered :class:`ExpandedCampaign` of :class:`CampaignPoint` records.
Expansion is pure and deterministic — same spec, same points, same
content hashes — and replicates the legacy sweeps exactly:

- figure-shaped points (one step, no faults, default paths) execute via
  :func:`~repro.experiments.figures.get_run`, sharing its memory/disk
  caches, so a campaign over ``(approach, np)`` is point-for-point
  bit-identical to ``fig5_write_bandwidth`` and friends;
- fault-rate points draw their schedules with the
  :func:`~repro.experiments.resilience_sweep` convention (per-rate-index
  stream ``root_seed + 7919 * i``, ``fs_errors = rate``, ``fs_stalls =
  rate / 2``), so a rate campaign reproduces the resilience benches;
- resume points replay :func:`~repro.experiments.run_resilient_campaign`.

:func:`run_point` is the module-level worker the sweep service (and
``run_sweep``) ships to shard processes; it returns a JSON-clean dict.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from .. import trace as trace_plane
from ..ckpt import EvolvingData
from ..ckpt.incremental import stats as delta_stats
from ..experiments.figures import get_run, problem_for, strategy_for
from ..experiments.parallel import cache_key
from ..experiments.resilience import run_resilient_campaign
from ..experiments.runner import run_checkpoint_steps
from ..faults import FaultConfig, FaultSchedule, faults_of
from ..sim import StreamRegistry
from ..topology import MachineConfig
from .spec import CampaignSpec

__all__ = ["CampaignPoint", "SkippedPoint", "ExpandedCampaign", "expand",
           "run_point"]


@dataclass(frozen=True)
class CampaignPoint:
    """One fully-resolved run: everything that determines its output."""

    approach: str
    n_ranks: int
    config: MachineConfig
    seed: Optional[int] = None
    n_steps: int = 1
    gaps: tuple[float, ...] = ()  # inter-step gaps (n_steps - 1 of them)
    fs_type: str = "gpfs"
    basedir: str = "/ckpt"
    faults: FaultSchedule = FaultSchedule()
    fault_rate: Optional[float] = None
    resume: bool = False
    delta: str = "off"
    tam: str = "off"
    trace: str = "off"
    points_per_rank: Optional[int] = None
    mutated_fraction: float = 0.25

    @property
    def is_figure_point(self) -> bool:
        """True when the point is exactly a figure-sweep run.

        Those execute through :func:`get_run` so they share the figure
        benches' caches and reproduce their values bit for bit.
        Incremental (delta) points, two-level-aggregation (tam) points and
        evolving-workload points never qualify — their data, written bytes
        or message traffic differ from the figures'.  Trace-capture points
        don't either: a cache hit would skip execution and produce no
        spans, so they always run live.
        """
        return (self.n_steps == 1 and not self.faults and not self.resume
                and self.fs_type == "gpfs" and self.basedir == "/ckpt"
                and self.delta == "off" and self.tam == "off"
                and self.trace == "off" and self.points_per_rank is None)

    @property
    def content_hash(self) -> str:
        """Hash over every run-determining input (``CACHE_VERSION``-keyed)."""
        return cache_key(
            "campaign_point", self.approach, self.n_ranks, self.seed,
            self.n_steps, self.gaps, self.fs_type, self.basedir,
            self.fault_rate, self.resume, self.config, self.faults,
            self.delta, self.tam, self.trace, self.points_per_rank,
            self.mutated_fraction)


@dataclass(frozen=True)
class SkippedPoint:
    """A grid combination expansion dropped, with the reason why."""

    approach: str
    n_ranks: int
    reason: str


@dataclass(frozen=True)
class ExpandedCampaign:
    """The deterministic expansion of one spec."""

    spec: CampaignSpec
    points: tuple[CampaignPoint, ...]
    skipped: tuple[SkippedPoint, ...] = ()

    def hashes(self) -> tuple[str, ...]:
        """Per-point content hashes, in expansion order."""
        return tuple(p.content_hash for p in self.points)


#: The ``resilience_sweep`` stream-stride constant: rate index ``i`` draws
#: its schedule from ``StreamRegistry(root_seed + 7919 * i)``.
_RATE_SEED_STRIDE = 7919


def _rate_schedule(spec: CampaignSpec, config: MachineConfig, n_ranks: int,
                   rate_index: int, rate: float) -> FaultSchedule:
    template = spec.faults.generate or FaultConfig()
    cfg = replace(template, fs_errors=rate, fs_stalls=rate / 2.0)
    root_seed = config.seed if spec.seed is None else spec.seed
    return FaultSchedule.generate(
        StreamRegistry(root_seed + _RATE_SEED_STRIDE * rate_index),
        n_ranks, cfg)


def expand(spec: CampaignSpec) -> ExpandedCampaign:
    """Expand a spec into points: approach-major, then np, delta, tam, rate.

    Infeasible combinations (an ``rbio_nfNNN`` key whose file count
    leaves fewer than two ranks per writer group) are skipped and
    recorded in :attr:`ExpandedCampaign.skipped`, never silently dropped.
    """
    config = spec.machine.config()
    n_steps, gaps = spec.steps_and_gaps()
    base_faults = FaultSchedule(spec.faults.specs)
    points: list[CampaignPoint] = []
    skipped: list[SkippedPoint] = []
    for approach in spec.grid.approaches:
        for n_ranks in spec.grid.np:
            if approach.startswith("rbio_nf") and approach != "rbio_nf1":
                nf = int(approach[7:])
                if n_ranks // nf < 2:
                    skipped.append(SkippedPoint(
                        approach, n_ranks,
                        f"nf={nf} needs at least 2 ranks per writer group "
                        f"at np={n_ranks}"))
                    continue
            workload = dict(
                points_per_rank=spec.workload.points_per_rank,
                mutated_fraction=spec.workload.mutated_fraction,
            ) if spec.workload is not None else {}
            for delta in (spec.grid.delta or ("off",)):
                for tam in (spec.grid.tam or ("off",)):
                    for trace in (spec.grid.trace or ("off",)):
                        common = dict(
                            approach=approach, n_ranks=n_ranks,
                            config=config, seed=spec.seed, n_steps=n_steps,
                            gaps=gaps, fs_type=spec.fs_type,
                            basedir=spec.basedir,
                            resume=spec.resume.enabled, delta=delta,
                            tam=tam, trace=trace, **workload,
                        )
                        if spec.grid.fault_rates:
                            for i, rate in enumerate(spec.grid.fault_rates):
                                points.append(CampaignPoint(
                                    faults=_rate_schedule(spec, config,
                                                          n_ranks, i, rate),
                                    fault_rate=rate, **common))
                        else:
                            points.append(CampaignPoint(faults=base_faults,
                                                        **common))
    return ExpandedCampaign(spec, tuple(points), tuple(skipped))


def run_point(point: CampaignPoint) -> dict:
    """Execute one point; return a JSON-clean metrics dict.

    Module-level and picklable so :func:`~repro.experiments.run_sweep`
    and the sweep service can ship points to worker processes.  The same
    point always produces the same dict (seeded simulation), which is
    what lets the service dedupe concurrent identical requests.
    """
    out = {
        "approach": point.approach,
        "n_ranks": point.n_ranks,
        "n_steps": point.n_steps,
        "seed": point.seed,
        "fault_rate": point.fault_rate,
        "delta": point.delta,
        "tam": point.tam,
        "trace": point.trace,
        "point": point.content_hash,
    }
    if point.is_figure_point:
        res = get_run(point.approach, point.n_ranks, point.config,
                      point.seed).result
        out.update({
            "overall_time": res.overall_time,
            "blocking_time": res.blocking_time,
            "write_bandwidth": res.write_bandwidth,
            "gbps": res.write_bandwidth / 1e9,
        })
        return out
    from ..profiling import configure_profiling
    prev_profiling = None
    if point.trace != "off":
        trace_plane.configure_trace(point.trace)
    else:
        # Non-figure sweep points never read their profiles: run with the
        # zero-cost None-profiler (figure points go through get_run,
        # whose summaries read ``run.profiler``, so they keep it on).
        prev_profiling = configure_profiling("off")
    try:
        return _run_point_live(point, out)
    finally:
        if point.trace != "off":
            trace_plane.configure_trace("off")
        if prev_profiling is not None:
            configure_profiling(prev_profiling)


def _run_point_live(point: CampaignPoint, out: dict) -> dict:
    """The non-figure execution body (trace/profiling already configured)."""
    strategy = strategy_for(point.approach, point.n_ranks,
                            delta=point.delta, tam=point.tam)
    if point.points_per_rank is not None:
        data = EvolvingData.mutating(
            point.points_per_rank,
            mutated_fraction=point.mutated_fraction,
            seed=0 if point.seed is None else point.seed)
    else:
        data = problem_for(point.n_ranks).data()
    if point.delta != "off":
        delta_stats.reset()
    if point.resume:
        campaign = run_resilient_campaign(
            strategy, point.n_ranks, data, n_steps=point.n_steps,
            faults=point.faults, config=point.config, seed=point.seed,
            basedir=point.basedir, fs_type=point.fs_type,
            gap_seconds=point.gaps)
        run = campaign.run
        report = campaign.fault_report
        out.update({
            "restored_step": campaign.restored_step,
            "failovers": report["by_kind"].get("writer_failover", 0),
            "crashed_roles": run.results[-1].roles.count("crashed"),
        })
    else:
        run = run_checkpoint_steps(
            strategy, point.n_ranks, data, point.n_steps,
            config=point.config, seed=point.seed, basedir=point.basedir,
            fs_type=point.fs_type, gap_seconds=point.gaps,
            faults=point.faults)
        report = faults_of(run.job).report()
    res = run.results[-1]
    out.update({
        "scheduled": report["scheduled"],
        "injected": report["injected"],
        "overall_time": res.overall_time,
        "blocking_time": res.blocking_time,
        "write_bandwidth": res.write_bandwidth,
        "gbps": res.write_bandwidth / 1e9,
        "per_step_blocking": [r.blocking_time for r in run.results],
    })
    if point.delta != "off":
        out.update(delta_stats.snapshot())
    if point.tam != "off":
        # Per-job fabric instance counters (not the process-wide snapshot),
        # so sharded campaign workers report their own point's traffic.
        fs = run.job.fabric.stats()
        out.update({k: fs[k] for k in
                    ("fabric_msgs_intra", "fabric_msgs_inter",
                     "fabric_bytes_intra", "fabric_bytes_inter",
                     "tam_msgs", "tam_packages", "tam_coalesce_ratio")})
    if point.trace != "off" and trace_plane.tracer is not None:
        out["trace_summary"] = trace_plane.tracer.summary()
    return out
