"""The sharded sweep service: one supervisor, many worker processes.

:class:`SweepService` is the long-lived core behind the HTTP API and the
``repro-campaign`` CLI.  A submitted campaign is expanded
(:func:`~repro.campaign.compiler.expand`) and its points are sharded
across a shared :class:`~concurrent.futures.ProcessPoolExecutor`.  Three
layers keep redundant work off the pool:

1. **campaign dedup** — submitting a spec whose ``campaign_id`` is
   already registered returns the existing campaign (one execution no
   matter how many concurrent clients submit it);
2. **in-flight point dedup** — two different campaigns that expand to a
   point with the same content hash share one future while it runs;
3. **result cache** — every finished point streams into the (bounded)
   :class:`~repro.experiments.parallel.DiskCache`, so later campaigns
   start from warm hits.

All public methods are thread-safe; the HTTP layer calls them from
request-handler threads.  :attr:`SweepService.counters` exposes exactly
how many points actually executed vs. were deduped or served from cache
— the observability hook the dedup tests (and CI smoke) assert on.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ProcessPoolExecutor, wait as futures_wait
from typing import Optional, Union

from ..experiments.parallel import DiskCache, default_workers, sweep_cache
from .compiler import ExpandedCampaign, expand, run_point
from .spec import CampaignSpec

__all__ = ["SweepService", "CampaignStatus"]


class CampaignStatus:
    """Mutable bookkeeping for one registered campaign."""

    def __init__(self, campaign_id: str, expanded: ExpandedCampaign) -> None:
        self.campaign_id = campaign_id
        self.expanded = expanded
        self.results: list[Optional[dict]] = [None] * len(expanded.points)
        self.errors: dict[int, str] = {}
        self.futures: list[Optional[Future]] = [None] * len(expanded.points)
        self.submissions = 1  # how many clients asked for this campaign

    @property
    def total(self) -> int:
        return len(self.expanded.points)

    @property
    def completed(self) -> int:
        return sum(1 for r in self.results if r is not None) + len(self.errors)

    @property
    def state(self) -> str:
        if self.errors:
            return "failed"
        return "done" if self.completed == self.total else "running"

    def status_dict(self) -> dict:
        """JSON-clean progress snapshot."""
        out = {
            "campaign_id": self.campaign_id,
            "name": self.expanded.spec.name,
            "state": self.state,
            "total": self.total,
            "completed": self.completed,
            "submissions": self.submissions,
            "skipped": [
                {"approach": s.approach, "np": s.n_ranks, "reason": s.reason}
                for s in self.expanded.skipped
            ],
        }
        if self.errors:
            out["errors"] = dict(sorted(self.errors.items()))
        return out

    def summary_dict(self) -> dict:
        """Per-point headline metrics (``None`` for unfinished points)."""
        points = []
        for point, result in zip(self.expanded.points, self.results):
            row = {
                "approach": point.approach,
                "np": point.n_ranks,
                "fault_rate": point.fault_rate,
                "hash": point.content_hash,
            }
            if result is not None:
                row.update({k: result.get(k) for k in
                            ("overall_time", "blocking_time", "gbps")})
            points.append(row)
        return {**self.status_dict(), "points": points}


class SweepService:
    """Shards campaign points across worker processes; dedupes everything.

    ``n_workers`` defaults to the ``REPRO_BENCH_PARALLEL`` convention of
    :func:`~repro.experiments.parallel.default_workers`.  ``cache``
    accepts a :class:`DiskCache`, a directory path, ``None`` to adopt the
    environment's ``REPRO_BENCH_CACHE`` cache, or ``False`` to disable
    caching outright.
    """

    def __init__(self, n_workers: Optional[int] = None,
                 cache: Union[DiskCache, str, None, bool] = None) -> None:
        workers = default_workers() if n_workers is None else max(1, n_workers)
        self._pool = ProcessPoolExecutor(max_workers=workers)
        self.n_workers = workers
        if cache is False:
            self.cache: Optional[DiskCache] = None
        elif isinstance(cache, DiskCache):
            self.cache = cache
        elif isinstance(cache, str):
            self.cache = DiskCache(cache)
        else:
            self.cache = sweep_cache()
        # Reentrant: add_done_callback runs synchronously (in the caller,
        # under this lock) when the future is already finished.
        self._lock = threading.RLock()
        self._campaigns: dict[str, CampaignStatus] = {}
        self._inflight: dict[str, Future] = {}
        self.counters = {
            "campaigns_submitted": 0,
            "campaigns_deduped": 0,
            "points_executed": 0,
            "points_deduped": 0,
            "points_cached": 0,
        }

    # -- submission --------------------------------------------------------

    def submit(self, spec: Union[CampaignSpec, dict]) -> str:
        """Register a campaign and start executing it; returns its id.

        Identical concurrent submissions collapse onto the already
        running campaign (the ``campaigns_deduped`` counter ticks and
        ``submissions`` on the campaign increments).
        """
        if not isinstance(spec, CampaignSpec):
            spec = CampaignSpec.from_dict(spec)
        campaign_id = spec.campaign_id
        with self._lock:
            self.counters["campaigns_submitted"] += 1
            existing = self._campaigns.get(campaign_id)
            if existing is not None:
                existing.submissions += 1
                self.counters["campaigns_deduped"] += 1
                return campaign_id
            status = CampaignStatus(campaign_id, expand(spec))
            self._campaigns[campaign_id] = status
            for index, point in enumerate(status.expanded.points):
                self._schedule(status, index, point)
        return campaign_id

    def _schedule(self, status: CampaignStatus, index: int, point) -> None:
        """Resolve one point: cache hit, shared in-flight future, or pool.

        Caller holds ``self._lock``.
        """
        key = point.content_hash
        if self.cache is not None:
            hit = self.cache.get(key)
            if hit is not None:
                status.results[index] = hit
                self.counters["points_cached"] += 1
                return
        future = self._inflight.get(key)
        if future is not None:
            self.counters["points_deduped"] += 1
        else:
            future = self._pool.submit(run_point, point)
            self._inflight[key] = future
            self.counters["points_executed"] += 1
            future.add_done_callback(
                lambda f, key=key: self._retire(key, f))
        status.futures[index] = future
        future.add_done_callback(
            lambda f, status=status, index=index: self._record(
                status, index, f))

    def _retire(self, key: str, future: Future) -> None:
        """Drop a finished future from the in-flight table; cache success."""
        with self._lock:
            if self._inflight.get(key) is future:
                del self._inflight[key]
        if self.cache is not None and future.exception() is None:
            self.cache.put(key, future.result())

    def _record(self, status: CampaignStatus, index: int,
                future: Future) -> None:
        exc = future.exception()
        with self._lock:
            if exc is not None:
                status.errors[index] = f"{type(exc).__name__}: {exc}"
            else:
                status.results[index] = future.result()

    # -- inspection --------------------------------------------------------

    def _get(self, campaign_id: str) -> CampaignStatus:
        status = self._campaigns.get(campaign_id)
        if status is None:
            raise KeyError(f"unknown campaign {campaign_id!r}")
        return status

    def status(self, campaign_id: str) -> dict:
        """Progress snapshot for one campaign (raises ``KeyError``)."""
        with self._lock:
            return self._get(campaign_id).status_dict()

    def summary(self, campaign_id: str) -> dict:
        """Status plus per-point headline metrics."""
        with self._lock:
            return self._get(campaign_id).summary_dict()

    def results(self, campaign_id: str) -> list[Optional[dict]]:
        """Full per-point result dicts, in expansion order."""
        with self._lock:
            return list(self._get(campaign_id).results)

    def list_campaigns(self) -> list[dict]:
        """Status snapshots of every registered campaign."""
        with self._lock:
            return [c.status_dict() for c in self._campaigns.values()]

    def service_status(self) -> dict:
        """Service-level counters and load (the HTTP ``/status`` payload)."""
        with self._lock:
            return {
                "n_workers": self.n_workers,
                "campaigns": len(self._campaigns),
                "inflight_points": len(self._inflight),
                "counters": dict(self.counters),
            }

    def metrics_registry(self):
        """Live telemetry as a :class:`repro.trace.MetricsRegistry`.

        Backs the HTTP ``/metrics`` endpoint: service counters and load
        gauges under ``campaign.``, plus the process-wide engine/fabric/
        delta counter snapshot under its canonical ``repro.trace.SCHEMA``
        names (one scrape shows both the service and the simulator).
        """
        from ..trace import MetricsRegistry
        registry = MetricsRegistry()
        status = self.service_status()
        registry.gauge("campaign.n_workers", status["n_workers"])
        registry.gauge("campaign.campaigns", status["campaigns"])
        registry.gauge("campaign.inflight_points", status["inflight_points"])
        for key, value in status["counters"].items():
            registry.counter(f"campaign.{key}", value)
        return registry

    # -- lifecycle ---------------------------------------------------------

    def wait(self, campaign_id: str,
             timeout: Optional[float] = None) -> dict:
        """Block until a campaign settles; return its final status."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            futures = [f for f in self._get(campaign_id).futures
                       if f is not None]
        futures_wait(futures, timeout=timeout)
        while True:
            # Done-callbacks record results *after* waiters wake; spin
            # until the bookkeeping catches up (or the deadline passes).
            status = self.status(campaign_id)
            if status["state"] != "running":
                return status
            if deadline is not None and time.monotonic() >= deadline:
                return status
            time.sleep(0.01)

    def shutdown(self) -> None:
        """Stop the worker pool (finishes in-flight points first)."""
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "SweepService":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
