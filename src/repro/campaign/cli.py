"""``repro-campaign``: run, expand, serve, and submit campaign specs.

Subcommands::

    repro-campaign expand SPEC            # show the deterministic expansion
    repro-campaign run SPEC [-w N]        # run locally, print JSON results
    repro-campaign serve [--port P]       # start the HTTP sweep service
    repro-campaign submit SPEC --url URL  # submit over HTTP, poll, print
    repro-campaign status --url URL [ID]  # service counters / campaign status

Also reachable as ``repro-report campaign ...``.  Spec files are JSON
(always available) or YAML (with the optional ``pyyaml``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.error
import urllib.request

from .compiler import expand, run_point
from .spec import CampaignSpec, SpecError

__all__ = ["main"]


def _load_spec(path: str) -> CampaignSpec:
    try:
        return CampaignSpec.from_file(path)
    except FileNotFoundError:
        raise SystemExit(f"error: no such spec file: {path}")
    except SpecError as exc:
        raise SystemExit(f"error: invalid campaign spec: {exc}")


def _cmd_expand(args) -> int:
    spec = _load_spec(args.spec)
    expanded = expand(spec)
    print(f"campaign {spec.name} ({spec.campaign_id[:12]}): "
          f"{len(expanded.points)} points")
    for p in expanded.points:
        rate = "" if p.fault_rate is None else f" rate={p.fault_rate:g}"
        resume = " +resume" if p.resume else ""
        print(f"  {p.approach:>12} np={p.n_ranks:<6} steps={p.n_steps}"
              f"{rate}{resume}  {p.content_hash[:12]}")
    for s in expanded.skipped:
        print(f"  skipped {s.approach} np={s.n_ranks}: {s.reason}")
    return 0


def _cmd_run(args) -> int:
    from ..experiments.parallel import run_sweep

    spec = _load_spec(args.spec)
    expanded = expand(spec)
    results = run_sweep(run_point, expanded.points, n_workers=args.workers)
    json.dump({"campaign_id": spec.campaign_id, "name": spec.name,
               "results": results}, sys.stdout, indent=2, default=str)
    print()
    return 0


def _cmd_serve(args) -> int:
    from .http import serve_forever
    from .service import SweepService

    service = SweepService(n_workers=args.workers,
                           cache=args.cache if args.cache else None)
    serve_forever(service, host=args.host, port=args.port)
    return 0


def _http_json(url: str, payload: dict | None = None) -> dict | list:
    data = None if payload is None else json.dumps(payload).encode()
    req = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(req) as resp:
            return json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        try:
            message = json.loads(exc.read()).get("error", str(exc))
        except Exception:
            message = str(exc)
        raise SystemExit(f"error: {url}: {message}")
    except urllib.error.URLError as exc:
        raise SystemExit(f"error: cannot reach {url}: {exc.reason}")


def _cmd_submit(args) -> int:
    spec = _load_spec(args.spec)
    base = args.url.rstrip("/")
    status = _http_json(f"{base}/campaigns", {"spec": spec.to_dict()})
    campaign_id = status["campaign_id"]
    print(f"submitted {spec.name} as {campaign_id[:12]} "
          f"({status['total']} points)", file=sys.stderr)
    while status["state"] == "running":
        time.sleep(args.poll)
        status = _http_json(f"{base}/campaigns/{campaign_id}")
        print(f"  {status['completed']}/{status['total']} done",
              file=sys.stderr)
    payload = _http_json(f"{base}/campaigns/{campaign_id}/"
                         f"{'results' if args.results else 'summary'}")
    json.dump(payload, sys.stdout, indent=2, default=str)
    print()
    return 0 if status["state"] == "done" else 1


def _cmd_status(args) -> int:
    base = args.url.rstrip("/")
    url = f"{base}/campaigns/{args.id}" if args.id else f"{base}/status"
    json.dump(_http_json(url), sys.stdout, indent=2)
    print()
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-campaign",
        description="Declarative sweep campaigns: expand, run, serve, submit.")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("expand", help="show a spec's deterministic expansion")
    p.add_argument("spec", help="campaign spec file (.json/.yaml)")
    p.set_defaults(fn=_cmd_expand)

    p = sub.add_parser("run", help="expand and run a spec locally")
    p.add_argument("spec", help="campaign spec file (.json/.yaml)")
    p.add_argument("-w", "--workers", type=int, default=None,
                   help="worker processes (default: REPRO_BENCH_PARALLEL)")
    p.set_defaults(fn=_cmd_run)

    p = sub.add_parser("serve", help="start the HTTP sweep service")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8642)
    p.add_argument("-w", "--workers", type=int, default=None)
    p.add_argument("--cache", default="",
                   help="result cache dir (default: REPRO_BENCH_CACHE)")
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser("submit", help="submit a spec to a running service")
    p.add_argument("spec", help="campaign spec file (.json/.yaml)")
    p.add_argument("--url", default="http://127.0.0.1:8642")
    p.add_argument("--poll", type=float, default=1.0,
                   help="poll interval in seconds")
    p.add_argument("--results", action="store_true",
                   help="print full per-point results, not the summary")
    p.set_defaults(fn=_cmd_submit)

    p = sub.add_parser("status", help="query a running service")
    p.add_argument("id", nargs="?", default="",
                   help="campaign id (default: service counters)")
    p.add_argument("--url", default="http://127.0.0.1:8642")
    p.set_defaults(fn=_cmd_status)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
