"""Stdlib HTTP JSON API over the sweep service.

Endpoints (all JSON)::

    POST /campaigns            {"spec": {...}}        -> submit, returns id
    GET  /campaigns                                   -> list of statuses
    GET  /campaigns/<id>                              -> status
    GET  /campaigns/<id>/summary                      -> status + headline rows
    GET  /campaigns/<id>/results                      -> full per-point dicts
    GET  /status                                      -> service counters
    GET  /healthz                                     -> liveness probe
    GET  /metrics                                     -> Prometheus text

Built on :class:`http.server.ThreadingHTTPServer` — no dependencies, good
enough for many concurrent polling clients (the service itself serializes
on its own lock; the worker pool does the heavy lifting).  Invalid specs
come back as ``400`` with the :class:`~repro.campaign.spec.SpecError`
message; unknown campaign ids as ``404``.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from .service import SweepService
from .spec import SpecError

__all__ = ["make_server", "start_server", "serve_forever"]


class _Handler(BaseHTTPRequestHandler):
    """Routes requests to the server's :class:`SweepService`."""

    server_version = "repro-campaign/1"
    protocol_version = "HTTP/1.1"

    # -- plumbing ----------------------------------------------------------

    @property
    def service(self) -> SweepService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    def _send(self, code: int, payload: dict | list) -> None:
        body = json.dumps(payload, default=str).encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, code: int, body: str,
                   content_type: str = "text/plain; version=0.0.4") -> None:
        raw = body.encode()
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(raw)))
        self.end_headers()
        self.wfile.write(raw)

    def _error(self, code: int, message: str) -> None:
        self._send(code, {"error": message})

    # -- routes ------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        try:
            if parts == ["status"]:
                self._send(200, self.service.service_status())
            elif parts == ["healthz"]:
                self._send(200, {"status": "ok",
                                 "workers": self.service.n_workers})
            elif parts == ["metrics"]:
                self._send_text(
                    200, self.service.metrics_registry().to_prometheus())
            elif parts == ["campaigns"]:
                self._send(200, self.service.list_campaigns())
            elif len(parts) == 2 and parts[0] == "campaigns":
                self._send(200, self.service.status(parts[1]))
            elif (len(parts) == 3 and parts[0] == "campaigns"
                  and parts[2] == "summary"):
                self._send(200, self.service.summary(parts[1]))
            elif (len(parts) == 3 and parts[0] == "campaigns"
                  and parts[2] == "results"):
                self._send(200, self.service.results(parts[1]))
            else:
                self._error(404, f"no such endpoint: {self.path}")
        except KeyError as exc:
            self._error(404, str(exc.args[0]) if exc.args else "not found")

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        if self.path.rstrip("/") != "/campaigns":
            self._error(404, f"no such endpoint: {self.path}")
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
            body = json.loads(self.rfile.read(length) or b"{}")
        except (ValueError, json.JSONDecodeError) as exc:
            self._error(400, f"bad JSON body: {exc}")
            return
        spec = body.get("spec", body) if isinstance(body, dict) else None
        if not isinstance(spec, dict):
            self._error(400, "body must be a JSON object "
                             "(optionally wrapped as {\"spec\": {...}})")
            return
        try:
            campaign_id = self.service.submit(spec)
        except SpecError as exc:
            self._error(400, str(exc))
            return
        self._send(200, self.service.status(campaign_id))


def make_server(service: SweepService, host: str = "127.0.0.1",
                port: int = 0, verbose: bool = False) -> ThreadingHTTPServer:
    """Build (but do not start) the HTTP server bound to ``host:port``.

    ``port=0`` picks a free port; read it back from
    ``server.server_address``.
    """
    server = ThreadingHTTPServer((host, port), _Handler)
    server.service = service  # type: ignore[attr-defined]
    server.verbose = verbose  # type: ignore[attr-defined]
    server.daemon_threads = True
    return server


def start_server(service: SweepService, host: str = "127.0.0.1",
                 port: int = 0) -> tuple[ThreadingHTTPServer, threading.Thread]:
    """Start the API on a background thread; returns ``(server, thread)``.

    Tests and embedders use this; ``server.shutdown()`` stops it.
    """
    server = make_server(service, host, port)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread


def serve_forever(service: SweepService, host: str = "127.0.0.1",
                  port: int = 8642, verbose: bool = True,
                  ready: Optional[threading.Event] = None) -> None:
    """Run the API in the foreground until interrupted (the CLI path)."""
    server = make_server(service, host, port, verbose=verbose)
    actual = server.server_address
    print(f"repro-campaign service on http://{actual[0]}:{actual[1]} "
          f"({service.n_workers} workers)")
    if ready is not None:
        ready.set()
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        service.shutdown()
