"""Migration shim: the legacy bench sweeps as one campaign spec each.

The bench modules used to hand-roll their grids (loops over approaches,
``prefetch_runs`` calls, per-point ``resilience_sweep`` invocations).
This module gives each of them a single declarative
:class:`~repro.campaign.spec.CampaignSpec` plus thin executors that are
**byte-compatible** with the legacy paths:

- :func:`prefetch_campaign` warms the exact caches the ``figN_*``
  functions read (via :func:`~repro.experiments.prefetch_runs`, the same
  worker function and cache keys as before), but derives the point list
  from the campaign expansion — including its feasibility skips;
- :func:`rate_rows` reproduces :func:`~repro.experiments.resilience_sweep`
  rows (same schedules, same ``overhead`` normalization) from a
  fault-rate campaign;
- :func:`failover_metrics` reproduces the writer-failover campaign dict.

``BENCH_*.json`` artifacts produced through the shim are identical to
the pre-campaign ones; the equivalence tests in
``tests/test_campaign_spec.py`` pin that.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..experiments.figures import prefetch_runs
from ..experiments.parallel import run_sweep
from .compiler import ExpandedCampaign, expand, run_point
from .spec import CampaignSpec

__all__ = [
    "figure_campaign",
    "faults_sweep_campaign",
    "failover_campaign",
    "prefetch_campaign",
    "run_campaign",
    "rate_rows",
    "failover_metrics",
]


def figure_campaign(name: str, approaches: Iterable[str],
                    sizes: Iterable[int],
                    seed: Optional[int] = None) -> CampaignSpec:
    """The figure-bench shape: one checkpoint step per (approach, np)."""
    d: dict = {
        "name": name,
        "grid": {"approaches": list(approaches), "np": list(sizes)},
    }
    if seed is not None:
        d["seed"] = seed
    return CampaignSpec.from_dict(d)


def faults_sweep_campaign(name: str, n_ranks: int, rates: Iterable[float],
                          n_steps: int, gap: float,
                          horizon: float) -> CampaignSpec:
    """The fault-rate overhead sweep as a campaign (rbIO, np:ng = 64:1)."""
    return CampaignSpec.from_dict({
        "name": name,
        "grid": {"approaches": ["rbio_ng"], "np": [n_ranks],
                 "fault_rates": list(rates)},
        "steps": {"n_steps": n_steps, "gap": gap},
        "faults": {"generate": {"horizon": horizon}},
    })


def failover_campaign(name: str, n_ranks: int, n_steps: int, gap: float,
                      crash_rank: int = 0,
                      crash_time: float = 1.0) -> CampaignSpec:
    """The writer-failover study: crash one writer, restart resiliently."""
    return CampaignSpec.from_dict({
        "name": name,
        "grid": {"approaches": ["rbio_ng"], "np": [n_ranks]},
        "steps": {"n_steps": n_steps, "gap": gap},
        "faults": {"specs": [
            {"kind": "rank_crash", "time": crash_time, "rank": crash_rank},
        ]},
        "resume": {"enabled": True},
    })


def prefetch_campaign(spec: CampaignSpec,
                      n_workers: Optional[int] = None) -> ExpandedCampaign:
    """Warm the figure caches for a campaign's figure-shaped points.

    Uses :func:`~repro.experiments.prefetch_runs` — the identical worker
    function, memory cache, and disk keys as the legacy benches — so the
    ``figN_*`` calls that follow see exactly the hits they used to.  The
    expansion (with its feasibility skips) is returned so callers can
    inspect what the campaign actually covers.
    """
    expanded = expand(spec)
    figure_points = [(p.approach, p.n_ranks) for p in expanded.points
                     if p.is_figure_point]
    if figure_points:
        config = spec.machine.config()
        prefetch_runs(figure_points, config=config, seed=spec.seed,
                      n_workers=n_workers)
    return expanded


def run_campaign(spec: CampaignSpec,
                 n_workers: Optional[int] = None) -> list[dict]:
    """Expand and execute a campaign locally; results in expansion order."""
    expanded = expand(spec)
    return run_sweep(run_point, expanded.points, n_workers=n_workers)


def rate_rows(spec: CampaignSpec,
              n_workers: Optional[int] = None) -> list[dict]:
    """Fault-rate campaign results in ``resilience_sweep`` row format.

    Same keys (``rate``/``scheduled``/``injected``/``overall_time``/
    ``blocking_time``/``write_bandwidth``/``overhead``), same values bit
    for bit: the compiler replicates the sweep's schedule derivation and
    run invocation exactly.
    """
    rows = []
    for result in run_campaign(spec, n_workers=n_workers):
        rows.append({
            "rate": float(result["fault_rate"]),
            "scheduled": result["scheduled"],
            "injected": result["injected"],
            "overall_time": result["overall_time"],
            "blocking_time": result["blocking_time"],
            "write_bandwidth": result["write_bandwidth"],
        })
    base = rows[0]["overall_time"] if rows else 0.0
    for row in rows:
        row["overhead"] = (row["overall_time"] / base) if base > 0 else 1.0
    return rows


def failover_metrics(spec: CampaignSpec,
                     n_workers: Optional[int] = None) -> dict:
    """Single-point failover campaign -> the legacy bench metrics dict."""
    (result,) = run_campaign(spec, n_workers=n_workers)
    return {
        "restored_step": result["restored_step"],
        "failovers": result["failovers"],
        "overall_time": result["overall_time"],
        "crashed_roles": result["crashed_roles"],
    }
