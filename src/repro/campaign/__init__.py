"""Declarative campaigns: spec -> compiler -> sharded sweep service.

Every figure, extension bench, and resilience sweep in this repo is one
*campaign*: a grid of (approach x processor-count [x fault-rate]) points
run on a configured machine under declarative checkpoint and fault rules.
This package replaces the ad-hoc per-bench Python configs with that one
abstraction, productionized for many concurrent clients:

:mod:`repro.campaign.spec`
    The campaign spec: YAML/dict -> frozen dataclasses with schema
    validation and helpful errors.  Checkpoint rules follow muscle3's
    yMMSL shape (``every``/``at``/``start``/``stop`` in wall-clock time or
    solver steps, plus ``at_end``).

:mod:`repro.campaign.compiler`
    Deterministic expansion of a spec into runnable points, each with a
    content hash derived from every run-determining input (reusing the
    ``CACHE_VERSION``-keyed scheme of :mod:`repro.experiments.parallel`),
    and the picklable :func:`~repro.campaign.compiler.run_point` worker.

:mod:`repro.campaign.service`
    A long-lived supervisor that shards campaign points across worker
    processes, dedupes concurrent identical campaigns and in-flight
    points, streams results into the bounded :class:`DiskCache`, and
    serves status/summaries to many concurrent clients.

:mod:`repro.campaign.http`
    A small stdlib HTTP JSON API over the service (submit campaign, poll
    progress, fetch results).

:mod:`repro.campaign.shim`
    The migration layer the bench modules use: one campaign spec each,
    executed through the same compiler, byte-compatible with the legacy
    ad-hoc sweeps.

:mod:`repro.campaign.cli`
    ``repro-campaign`` (also reachable as ``repro-report campaign ...``):
    run/expand specs locally, serve the HTTP API, submit/poll remotely.
"""

from .compiler import CampaignPoint, ExpandedCampaign, expand, run_point
from .service import SweepService
from .spec import (
    CampaignCheckpoint,
    CampaignFaults,
    CampaignSpec,
    GridSpec,
    MachineSpec,
    ResumeSpec,
    SpecError,
    StepsSpec,
    WorkloadSpec,
)

__all__ = [
    "CampaignCheckpoint",
    "CampaignFaults",
    "CampaignPoint",
    "CampaignSpec",
    "ExpandedCampaign",
    "GridSpec",
    "MachineSpec",
    "ResumeSpec",
    "SpecError",
    "StepsSpec",
    "SweepService",
    "WorkloadSpec",
    "expand",
    "run_point",
]
