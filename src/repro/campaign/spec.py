"""The declarative campaign spec: YAML/dict -> validated frozen dataclasses.

A campaign describes *what* to sweep, not *how*: the machine, the
(approach x np [x fault-rate]) grid, checkpoint rules in wall-clock time
or solver steps (muscle3/yMMSL-style ``every``/``at``/``start``/``stop``
plus ``at_end``), fault rules (explicit specs or generated rates), and
resume-from-snapshot semantics.  The compiler
(:mod:`repro.campaign.compiler`) turns a spec into concrete runnable
points.

Every parse error is a :class:`SpecError` naming the offending path
(``grid.np[1]``), what was found, and what was expected — including
did-you-mean suggestions for misspelled keys.  ``to_dict`` emits the
canonical plain-data form; ``from_dict(spec.to_dict())`` round-trips to
an equal spec, which is what makes campaign content hashes stable across
processes and hosts.

Example (YAML)::

    name: tiny-faulted-campaign
    grid:
      approaches: [rbio_ng, coio_64]
      np: [128, 256]
    checkpoint:
      horizon: 4.0
      wallclock_time:
        - every: 2.0
    faults:
      specs:
        - {kind: fs_stall, time: 0.5, delay: 0.2}
"""

from __future__ import annotations

import difflib
import json
from dataclasses import dataclass, fields
from typing import Any, Mapping, Optional

from ..ckpt.schedule import CheckpointRule, checkpoint_instants
from ..experiments.configs import TCOMP_PER_STEP
from ..experiments.parallel import cache_key
from ..faults import FaultConfig, FaultSpec
from ..topology import MachineConfig, intrepid

__all__ = [
    "SpecError",
    "MachineSpec",
    "GridSpec",
    "StepsSpec",
    "CampaignCheckpoint",
    "CampaignFaults",
    "ResumeSpec",
    "WorkloadSpec",
    "CampaignSpec",
]

#: File-system variants the runner accepts.
FS_TYPES = ("gpfs", "lustre", "pvfs")

#: Machine presets a spec may name.
MACHINE_PRESETS = ("intrepid", "intrepid_quiet")

#: Resume policies (how a restart picks its generation).
RESUME_POLICIES = ("newest_complete",)

#: Incremental-checkpointing modes the ``grid.delta`` axis accepts
#: (see :meth:`repro.ckpt.CheckpointStrategy.configure_delta`).
DELTA_MODES = ("off", "auto", "require")

#: Two-level aggregation modes the ``grid.tam`` axis accepts
#: (see :meth:`repro.ckpt.CheckpointStrategy.configure_tam`).
TAM_MODES = ("off", "auto", "require")

#: Trace-capture modes the ``grid.trace`` axis accepts
#: (see :func:`repro.trace.configure_trace`).
TRACE_MODES = ("off", "summary", "full")


class SpecError(ValueError):
    """A campaign spec failed validation; the message names the path."""

    def __init__(self, path: str, message: str) -> None:
        self.path = path
        super().__init__(f"{path}: {message}" if path else message)


def _type_name(value: Any) -> str:
    return type(value).__name__


def _require_mapping(value: Any, path: str) -> Mapping:
    if not isinstance(value, Mapping):
        raise SpecError(path, f"expected a mapping, got {_type_name(value)}")
    return value


def _reject_unknown(d: Mapping, allowed: tuple, path: str) -> None:
    unknown = [k for k in d if k not in allowed]
    if not unknown:
        return
    key = str(unknown[0])
    hint = difflib.get_close_matches(key, [str(a) for a in allowed], n=1)
    suggestion = f" (did you mean {hint[0]!r}?)" if hint else ""
    raise SpecError(
        path, f"unknown field {key!r}{suggestion}; "
        f"expected a subset of {sorted(str(a) for a in allowed)}")


def _number(value: Any, path: str, *, minimum: Optional[float] = None,
            positive: bool = False) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise SpecError(path, f"expected a number, got {_type_name(value)}")
    out = float(value)
    if positive and out <= 0:
        raise SpecError(path, f"must be positive, got {value}")
    if minimum is not None and out < minimum:
        raise SpecError(path, f"must be >= {minimum}, got {value}")
    return out


def _integer(value: Any, path: str, *, minimum: Optional[int] = None) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise SpecError(path, f"expected an integer, got {_type_name(value)}")
    if minimum is not None and value < minimum:
        raise SpecError(path, f"must be >= {minimum}, got {value}")
    return value


def _boolean(value: Any, path: str) -> bool:
    if not isinstance(value, bool):
        raise SpecError(path, f"expected true/false, got {_type_name(value)}")
    return value


def _string(value: Any, path: str) -> str:
    if not isinstance(value, str):
        raise SpecError(path, f"expected a string, got {_type_name(value)}")
    return value


def _sequence(value: Any, path: str) -> list:
    if isinstance(value, (str, bytes, Mapping)) or not hasattr(value, "__iter__"):
        raise SpecError(path, f"expected a list, got {_type_name(value)}")
    return list(value)


# ---------------------------------------------------------------------------
# Sections
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class MachineSpec:
    """Which simulated machine a campaign runs on.

    ``preset`` selects the calibrated base (``intrepid``, or
    ``intrepid_quiet`` with all stochastic noise disabled); ``overrides``
    replaces individual :class:`~repro.topology.MachineConfig` fields —
    the ablation axis, declaratively.
    """

    preset: str = "intrepid"
    overrides: tuple[tuple[str, Any], ...] = ()

    def config(self) -> MachineConfig:
        base = intrepid()
        if self.preset == "intrepid_quiet":
            base = base.quiet()
        return base.with_(**dict(self.overrides)) if self.overrides else base

    @classmethod
    def from_dict(cls, d: Mapping, path: str = "machine") -> "MachineSpec":
        _reject_unknown(d, ("preset", "overrides"), path)
        preset = _string(d.get("preset", "intrepid"), f"{path}.preset")
        if preset not in MACHINE_PRESETS:
            raise SpecError(f"{path}.preset",
                            f"unknown preset {preset!r}; "
                            f"expected one of {list(MACHINE_PRESETS)}")
        overrides = _require_mapping(d.get("overrides", {}),
                                     f"{path}.overrides")
        known = {f.name for f in fields(MachineConfig)}
        items = []
        for name in sorted(str(k) for k in overrides):
            if name not in known:
                hint = difflib.get_close_matches(name, sorted(known), n=1)
                suggestion = f" (did you mean {hint[0]!r}?)" if hint else ""
                raise SpecError(f"{path}.overrides",
                                f"unknown MachineConfig field "
                                f"{name!r}{suggestion}")
            value = overrides[name]
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise SpecError(f"{path}.overrides.{name}",
                                f"expected a number, got {_type_name(value)}")
            items.append((name, value))
        return cls(preset=preset, overrides=tuple(items))

    def to_dict(self) -> dict:
        out: dict = {"preset": self.preset}
        if self.overrides:
            out["overrides"] = dict(self.overrides)
        return out


@dataclass(frozen=True)
class GridSpec:
    """The sweep grid: approaches x np [x rates] [x delta] [x tam] [x trace]."""

    approaches: tuple[str, ...]
    np: tuple[int, ...]
    fault_rates: tuple[float, ...] = ()
    delta: tuple[str, ...] = ()
    tam: tuple[str, ...] = ()
    trace: tuple[str, ...] = ()

    @classmethod
    def from_dict(cls, d: Mapping, path: str = "grid") -> "GridSpec":
        _reject_unknown(d, ("approaches", "np", "fault_rates", "delta",
                            "tam", "trace"), path)
        if "approaches" not in d or "np" not in d:
            missing = [k for k in ("approaches", "np") if k not in d]
            raise SpecError(path, f"missing required field(s) {missing}")
        approaches = []
        for i, a in enumerate(_sequence(d["approaches"], f"{path}.approaches")):
            key = _string(a, f"{path}.approaches[{i}]")
            if not _known_approach(key):
                raise SpecError(
                    f"{path}.approaches[{i}]",
                    f"unknown approach {key!r}; expected one of "
                    f"{_APPROACH_HELP} or 'rbio_nfNNN'")
            approaches.append(key)
        np_values = [
            _integer(n, f"{path}.np[{i}]", minimum=1)
            for i, n in enumerate(_sequence(d["np"], f"{path}.np"))
        ]
        rates = [
            _number(r, f"{path}.fault_rates[{i}]", minimum=0.0)
            for i, r in enumerate(_sequence(d.get("fault_rates", ()),
                                            f"{path}.fault_rates"))
        ]
        delta = []
        for i, m in enumerate(_sequence(d.get("delta", ()), f"{path}.delta")):
            mode = _string(m, f"{path}.delta[{i}]")
            if mode not in DELTA_MODES:
                raise SpecError(f"{path}.delta[{i}]",
                                f"unknown delta mode {mode!r}; expected one "
                                f"of {list(DELTA_MODES)}")
            delta.append(mode)
        tam = []
        for i, m in enumerate(_sequence(d.get("tam", ()), f"{path}.tam")):
            mode = _string(m, f"{path}.tam[{i}]")
            if mode not in TAM_MODES:
                raise SpecError(f"{path}.tam[{i}]",
                                f"unknown tam mode {mode!r}; expected one "
                                f"of {list(TAM_MODES)}")
            tam.append(mode)
        trace = []
        for i, m in enumerate(_sequence(d.get("trace", ()), f"{path}.trace")):
            mode = _string(m, f"{path}.trace[{i}]")
            if mode not in TRACE_MODES:
                raise SpecError(f"{path}.trace[{i}]",
                                f"unknown trace mode {mode!r}; expected one "
                                f"of {list(TRACE_MODES)}")
            trace.append(mode)
        if not approaches:
            raise SpecError(f"{path}.approaches", "must not be empty")
        if not np_values:
            raise SpecError(f"{path}.np", "must not be empty")
        return cls(tuple(approaches), tuple(np_values), tuple(rates),
                   tuple(delta), tuple(tam), tuple(trace))

    def to_dict(self) -> dict:
        out: dict = {"approaches": list(self.approaches),
                     "np": list(self.np)}
        if self.fault_rates:
            out["fault_rates"] = list(self.fault_rates)
        if self.delta:
            out["delta"] = list(self.delta)
        if self.tam:
            out["tam"] = list(self.tam)
        if self.trace:
            out["trace"] = list(self.trace)
        return out


#: Fixed approach keys (the Fig. 5-7 legend plus the staging extension).
_FIXED_APPROACHES = ("1pfpp", "coio_nf1", "coio_64", "rbio_nf1", "rbio_ng",
                     "bbio")
_APPROACH_HELP = list(_FIXED_APPROACHES)


def _known_approach(key: str) -> bool:
    if key in _FIXED_APPROACHES:
        return True
    if key.startswith("rbio_nf"):
        try:
            return int(key[7:]) >= 1
        except ValueError:
            return False
    return False


@dataclass(frozen=True)
class StepsSpec:
    """Explicit uniform stepping: ``n_steps`` checkpoints, ``gap`` apart.

    The simple alternative to declarative checkpoint rules; a spec may
    give one or the other, not both.
    """

    n_steps: int = 1
    gap: float = 0.0

    @classmethod
    def from_dict(cls, d: Mapping, path: str = "steps") -> "StepsSpec":
        _reject_unknown(d, ("n_steps", "gap"), path)
        return cls(
            n_steps=_integer(d.get("n_steps", 1), f"{path}.n_steps", minimum=1),
            gap=_number(d.get("gap", 0.0), f"{path}.gap", minimum=0.0),
        )

    def to_dict(self) -> dict:
        return {"n_steps": self.n_steps, "gap": self.gap}


def _rule_from_dict(d: Mapping, path: str) -> CheckpointRule:
    _reject_unknown(d, ("every", "at", "start", "stop"), path)
    kwargs: dict = {}
    if "every" in d:
        kwargs["every"] = _number(d["every"], f"{path}.every", positive=True)
    if "at" in d:
        kwargs["at"] = tuple(
            _number(t, f"{path}.at[{i}]", minimum=0.0)
            for i, t in enumerate(_sequence(d["at"], f"{path}.at")))
    if "start" in d:
        kwargs["start"] = _number(d["start"], f"{path}.start", minimum=0.0)
    if "stop" in d:
        kwargs["stop"] = _number(d["stop"], f"{path}.stop", minimum=0.0)
    try:
        return CheckpointRule(**kwargs)
    except ValueError as exc:
        raise SpecError(path, str(exc)) from None


def _rule_to_dict(rule: CheckpointRule) -> dict:
    out: dict = {}
    if rule.every is not None:
        out["every"] = rule.every
    if rule.at:
        out["at"] = list(rule.at)
    if rule.start:
        out["start"] = rule.start
    if rule.stop is not None:
        out["stop"] = rule.stop
    return out


@dataclass(frozen=True)
class CampaignCheckpoint:
    """Declarative checkpoint schedule (muscle3/yMMSL-style rules).

    ``wallclock_time`` rules are in simulated seconds; ``solver_steps``
    rules are in solver time steps, scaled by ``t_step`` seconds per step.
    ``horizon`` bounds the campaign in simulated seconds; ``at_end``
    appends a final checkpoint at the horizon.  The union of all rule
    instants, sorted and deduplicated, becomes the checkpoint sequence:
    ``n_steps`` coordinated steps whose inter-step computation gaps are
    the instant spacings (the offset of the first instant is immaterial —
    a run starts with its first coordinated step).
    """

    horizon: float
    at_end: bool = False
    t_step: float = TCOMP_PER_STEP
    wallclock_time: tuple[CheckpointRule, ...] = ()
    solver_steps: tuple[CheckpointRule, ...] = ()

    def instants(self) -> tuple[float, ...]:
        """The merged checkpoint instants in simulated seconds."""
        merged = list(checkpoint_instants(self.wallclock_time, self.horizon,
                                          at_end=self.at_end))
        if self.solver_steps:
            merged.extend(checkpoint_instants(self.solver_steps, self.horizon,
                                              scale=self.t_step))
        merged.sort()
        out: list[float] = []
        for t in merged:
            if not out or t - out[-1] > 1e-6:
                out.append(t)
        return tuple(out)

    def steps_and_gaps(self) -> tuple[int, tuple[float, ...]]:
        """``(n_steps, inter-step gaps)`` for the runner."""
        instants = self.instants()
        if not instants:
            raise SpecError(
                "checkpoint",
                f"rules produce no checkpoints within horizon "
                f"{self.horizon}; add a rule or set at_end: true")
        gaps = tuple(b - a for a, b in zip(instants, instants[1:]))
        return len(instants), gaps

    @classmethod
    def from_dict(cls, d: Mapping, path: str = "checkpoint"
                  ) -> "CampaignCheckpoint":
        _reject_unknown(d, ("horizon", "at_end", "t_step", "wallclock_time",
                            "solver_steps"), path)
        if "horizon" not in d:
            raise SpecError(f"{path}.horizon",
                            "required (simulated seconds the rules cover)")
        rules = {}
        for axis in ("wallclock_time", "solver_steps"):
            rules[axis] = tuple(
                _rule_from_dict(_require_mapping(r, f"{path}.{axis}[{i}]"),
                                f"{path}.{axis}[{i}]")
                for i, r in enumerate(_sequence(d.get(axis, ()),
                                                f"{path}.{axis}")))
        return cls(
            horizon=_number(d["horizon"], f"{path}.horizon", positive=True),
            at_end=_boolean(d.get("at_end", False), f"{path}.at_end"),
            t_step=_number(d.get("t_step", TCOMP_PER_STEP), f"{path}.t_step",
                           positive=True),
            wallclock_time=rules["wallclock_time"],
            solver_steps=rules["solver_steps"],
        )

    def to_dict(self) -> dict:
        out: dict = {"horizon": self.horizon}
        if self.at_end:
            out["at_end"] = True
        if self.t_step != TCOMP_PER_STEP:
            out["t_step"] = self.t_step
        if self.wallclock_time:
            out["wallclock_time"] = [_rule_to_dict(r)
                                     for r in self.wallclock_time]
        if self.solver_steps:
            out["solver_steps"] = [_rule_to_dict(r) for r in self.solver_steps]
        return out


@dataclass(frozen=True)
class CampaignFaults:
    """Fault rules: explicit scheduled specs and/or a generation template.

    ``specs`` are literal :class:`~repro.faults.FaultSpec` records applied
    to every grid point.  ``generate`` is the :class:`FaultConfig`
    template used by the ``grid.fault_rates`` axis: each rate point draws
    a deterministic schedule with ``fs_errors = rate`` and ``fs_stalls =
    rate / 2`` (the :func:`~repro.experiments.resilience_sweep`
    convention), keeping the template's other knobs (notably ``horizon``).
    """

    specs: tuple[FaultSpec, ...] = ()
    generate: Optional[FaultConfig] = None

    @classmethod
    def from_dict(cls, d: Mapping, path: str = "faults") -> "CampaignFaults":
        _reject_unknown(d, ("specs", "generate"), path)
        specs = []
        for i, s in enumerate(_sequence(d.get("specs", ()), f"{path}.specs")):
            entry = _require_mapping(s, f"{path}.specs[{i}]")
            try:
                specs.append(FaultSpec.from_dict(entry))
            except (ValueError, TypeError) as exc:
                raise SpecError(f"{path}.specs[{i}]", str(exc)) from None
        generate = None
        if "generate" in d:
            entry = _require_mapping(d["generate"], f"{path}.generate")
            try:
                generate = FaultConfig.from_dict(entry)
            except (ValueError, TypeError) as exc:
                raise SpecError(f"{path}.generate", str(exc)) from None
        return cls(specs=tuple(specs), generate=generate)

    def to_dict(self) -> dict:
        out: dict = {}
        if self.specs:
            out["specs"] = [s.to_dict() for s in self.specs]
        if self.generate is not None:
            out["generate"] = self.generate.to_dict()
        return out


@dataclass(frozen=True)
class WorkloadSpec:
    """An evolving (step-mutating) workload instead of the static problem.

    When present, every point runs on
    :meth:`repro.ckpt.EvolvingData.mutating` — each rank's state starts
    random and a contiguous ``mutated_fraction`` of it is overwritten per
    step — instead of the weak-scaled paper problem.  This is the
    workload the ``grid.delta`` axis is designed to measure: the mutated
    fraction bounds the chunk-dedup ratio an incremental run can reach.
    """

    points_per_rank: int
    mutated_fraction: float = 0.25

    @classmethod
    def from_dict(cls, d: Mapping, path: str = "workload") -> "WorkloadSpec":
        _reject_unknown(d, ("points_per_rank", "mutated_fraction"), path)
        if "points_per_rank" not in d:
            raise SpecError(f"{path}.points_per_rank", "required")
        fraction = _number(d.get("mutated_fraction", 0.25),
                           f"{path}.mutated_fraction", positive=True)
        if fraction > 1.0:
            raise SpecError(f"{path}.mutated_fraction",
                            f"must be <= 1, got {fraction}")
        return cls(
            points_per_rank=_integer(d["points_per_rank"],
                                     f"{path}.points_per_rank", minimum=1),
            mutated_fraction=fraction,
        )

    def to_dict(self) -> dict:
        out: dict = {"points_per_rank": self.points_per_rank}
        if self.mutated_fraction != 0.25:
            out["mutated_fraction"] = self.mutated_fraction
        return out


@dataclass(frozen=True)
class ResumeSpec:
    """Resume-from-snapshot semantics for faulted campaigns.

    When enabled, every point's checkpoint wave is followed (on the same
    job, after background drains settle) by a coordinated resilient
    restore that agrees on a generation per the ``policy`` —
    ``newest_complete`` votes for the newest generation every rank can
    read back intact (see :mod:`repro.experiments.resilience`).
    """

    enabled: bool = False
    policy: str = "newest_complete"

    @classmethod
    def from_dict(cls, d: Mapping, path: str = "resume") -> "ResumeSpec":
        _reject_unknown(d, ("enabled", "policy"), path)
        policy = _string(d.get("policy", "newest_complete"), f"{path}.policy")
        if policy not in RESUME_POLICIES:
            raise SpecError(f"{path}.policy",
                            f"unknown policy {policy!r}; expected one of "
                            f"{list(RESUME_POLICIES)}")
        return cls(enabled=_boolean(d.get("enabled", False),
                                    f"{path}.enabled"),
                   policy=policy)

    def to_dict(self) -> dict:
        out: dict = {"enabled": self.enabled}
        if self.policy != "newest_complete":
            out["policy"] = self.policy
        return out


# ---------------------------------------------------------------------------
# The spec
# ---------------------------------------------------------------------------

_TOP_LEVEL = ("name", "seed", "machine", "grid", "steps", "checkpoint",
              "faults", "resume", "workload", "fs_type", "basedir")


@dataclass(frozen=True)
class CampaignSpec:
    """One complete declarative campaign (see the module docstring)."""

    name: str
    grid: GridSpec
    seed: Optional[int] = None
    machine: MachineSpec = MachineSpec()
    steps: Optional[StepsSpec] = None
    checkpoint: Optional[CampaignCheckpoint] = None
    faults: CampaignFaults = CampaignFaults()
    resume: ResumeSpec = ResumeSpec()
    workload: Optional[WorkloadSpec] = None
    fs_type: str = "gpfs"
    basedir: str = "/ckpt"

    def __post_init__(self) -> None:
        if self.steps is not None and self.checkpoint is not None:
            raise SpecError(
                "steps", "give either explicit 'steps' or declarative "
                "'checkpoint' rules, not both")
        if self.grid.fault_rates and self.faults.specs:
            raise SpecError(
                "grid.fault_rates", "a fault-rate axis cannot be combined "
                "with explicit faults.specs (rates generate their own "
                "schedules)")

    # -- construction ------------------------------------------------------

    @classmethod
    def from_dict(cls, d: Mapping) -> "CampaignSpec":
        """Validate a plain dict (parsed YAML/JSON) into a spec."""
        d = _require_mapping(d, "")
        _reject_unknown(d, _TOP_LEVEL, "")
        if "name" not in d:
            raise SpecError("name", "required")
        name = _string(d["name"], "name")
        if not name:
            raise SpecError("name", "must not be empty")
        if "grid" not in d:
            raise SpecError("grid", "required")
        seed = d.get("seed")
        if seed is not None:
            seed = _integer(seed, "seed")
        fs_type = _string(d.get("fs_type", "gpfs"), "fs_type")
        if fs_type not in FS_TYPES:
            raise SpecError("fs_type", f"unknown file system {fs_type!r}; "
                            f"expected one of {list(FS_TYPES)}")
        basedir = _string(d.get("basedir", "/ckpt"), "basedir")
        if not basedir.startswith("/"):
            raise SpecError("basedir", f"must be absolute, got {basedir!r}")
        return cls(
            name=name,
            seed=seed,
            machine=MachineSpec.from_dict(
                _require_mapping(d.get("machine", {}), "machine")),
            grid=GridSpec.from_dict(_require_mapping(d["grid"], "grid")),
            steps=(StepsSpec.from_dict(_require_mapping(d["steps"], "steps"))
                   if "steps" in d else None),
            checkpoint=(CampaignCheckpoint.from_dict(
                _require_mapping(d["checkpoint"], "checkpoint"))
                if "checkpoint" in d else None),
            faults=CampaignFaults.from_dict(
                _require_mapping(d.get("faults", {}), "faults")),
            resume=ResumeSpec.from_dict(
                _require_mapping(d.get("resume", {}), "resume")),
            workload=(WorkloadSpec.from_dict(
                _require_mapping(d["workload"], "workload"))
                if "workload" in d else None),
            fs_type=fs_type,
            basedir=basedir,
        )

    @classmethod
    def from_yaml(cls, text: str) -> "CampaignSpec":
        """Parse a YAML document (requires the optional ``pyyaml``)."""
        try:
            import yaml
        except ImportError:  # pragma: no cover - environment-dependent
            raise SpecError(
                "", "YAML specs need the optional 'pyyaml' package "
                "(pip install repro[campaign]); dict/JSON specs work "
                "without it") from None
        return cls.from_dict(_require_mapping(yaml.safe_load(text), ""))

    @classmethod
    def from_file(cls, path: str) -> "CampaignSpec":
        """Load a spec from a ``.json`` or ``.yaml``/``.yml`` file."""
        with open(path) as f:
            text = f.read()
        if str(path).endswith(".json"):
            return cls.from_dict(json.loads(text))
        return cls.from_yaml(text)

    # -- canonical form ----------------------------------------------------

    def to_dict(self) -> dict:
        """Canonical plain-data form; ``from_dict`` round-trips it."""
        out: dict = {"name": self.name}
        if self.seed is not None:
            out["seed"] = self.seed
        machine = self.machine.to_dict()
        if machine != {"preset": "intrepid"}:
            out["machine"] = machine
        out["grid"] = self.grid.to_dict()
        if self.steps is not None:
            out["steps"] = self.steps.to_dict()
        if self.checkpoint is not None:
            out["checkpoint"] = self.checkpoint.to_dict()
        faults = self.faults.to_dict()
        if faults:
            out["faults"] = faults
        if self.resume.enabled:
            out["resume"] = self.resume.to_dict()
        if self.workload is not None:
            out["workload"] = self.workload.to_dict()
        if self.fs_type != "gpfs":
            out["fs_type"] = self.fs_type
        if self.basedir != "/ckpt":
            out["basedir"] = self.basedir
        return out

    def canonical_json(self) -> str:
        """Key-sorted JSON of :meth:`to_dict` (the identity the service hashes)."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @property
    def campaign_id(self) -> str:
        """Content hash identifying this campaign (``CACHE_VERSION``-keyed)."""
        return cache_key("campaign", self.canonical_json())

    # -- derived stepping --------------------------------------------------

    def steps_and_gaps(self) -> tuple[int, tuple[float, ...]]:
        """Resolve stepping: explicit ``steps``, checkpoint rules, or 1 step."""
        if self.checkpoint is not None:
            return self.checkpoint.steps_and_gaps()
        if self.steps is not None:
            n = self.steps.n_steps
            return n, (self.steps.gap,) * (n - 1)
        return 1, ()
